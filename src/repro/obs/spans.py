"""Span-based tracing: phase-level causality across processes.

A :class:`SpanTracer` records *spans* — named phases with a trace ID, a span
ID, a parent link, and **two** timestamp pairs: wall-clock seconds (what the
operator experiences) and simulated seconds (what the run experienced, when
a clock is bound).  Spans nest through an explicit stack, so the experiment
driver, the runtime phases, cache lookups and fault/recovery actions all
hang off one tree that explains where an experiment's wall time went.

The API mirrors the rest of :mod:`repro.obs`: **opt-in and zero-cost when
detached**.  The module-level :data:`ACTIVE` tracer is ``None`` by default;
the free functions :func:`span` and :func:`event` are a single global load
plus a ``None`` check in that state, so instrumented code never pays for
tracing it did not ask for.

Cross-process propagation (``parallel_starmap`` pool workers) works by
value:  the coordinator captures :meth:`SpanTracer.context` — the trace ID
plus the currently open span — and ships it with each submitted call.  The
pool-side trampoline calls :func:`run_in_child`, which activates a fresh
tracer whose top-level spans parent onto the coordinator's submitting span,
and returns the child's closed spans alongside the result so the
coordinator can :meth:`~SpanTracer.adopt` them into one merged trace.

Span records are excluded from the bit-identity bar (like manifests): they
carry wall-clock timestamps and process IDs by design.  Nothing here may
import outside the stdlib — the runtime engine imports this module.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

SPANS_FILENAME = "spans.jsonl"

#: Process-wide span-ID counter; combined with the PID it keeps IDs unique
#: across every tracer a (possibly forked) process ever activates.
_id_counter = 0


def _next_span_id() -> str:
    global _id_counter
    _id_counter += 1
    return f"{os.getpid():x}-{_id_counter:x}"


def _new_trace_id() -> str:
    return f"{os.getpid():x}-{time.time_ns():x}"


class _SpanHandle:
    """Context manager for one open span (cheap: two slots, no generator)."""

    __slots__ = ("_tracer", "rec")

    def __init__(self, tracer: "SpanTracer", rec: dict) -> None:
        self._tracer = tracer
        self.rec = rec

    def __enter__(self) -> dict:
        return self.rec

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.rec["attrs"]["error"] = exc_type.__name__
        self._tracer._close(self.rec)
        return False


class _NullHandle:
    """The detached fast path: ``with span(...)`` costs two no-op calls."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_HANDLE = _NullHandle()


class SpanTracer:
    """Collects spans for one trace, in one process.

    ``clock`` is anything with a ``now`` attribute (the Simulator); when
    bound, spans carry simulated timestamps next to the wall-clock pair.
    ``root_parent`` is the parent span ID for this tracer's *top-level*
    spans — set by :func:`run_in_child` so pool-worker spans re-parent onto
    the coordinator's submitting span.
    """

    def __init__(
        self,
        trace_id: Optional[str] = None,
        root_parent: Optional[str] = None,
        clock: Any = None,
    ) -> None:
        self.trace_id = trace_id if trace_id is not None else _new_trace_id()
        self.root_parent = root_parent
        self.clock = clock
        #: Closed spans, in close order (children close before parents).
        self.spans: list[dict] = []
        self._stack: list[str] = []

    # ------------------------------------------------------------ recording

    def _open(self, name: str, attrs: dict) -> dict:
        clock = self.clock
        rec = {
            "trace_id": self.trace_id,
            "span_id": _next_span_id(),
            "parent_id": self._stack[-1] if self._stack else self.root_parent,
            "name": name,
            "pid": os.getpid(),
            "wall_start": time.time(),
            "wall_end": None,
            "sim_start": clock.now if clock is not None else None,
            "sim_end": None,
            "attrs": attrs,
        }
        self._stack.append(rec["span_id"])
        return rec

    def _close(self, rec: dict) -> None:
        rec["wall_end"] = time.time()
        clock = self.clock
        if clock is not None:
            rec["sim_end"] = clock.now
        if self._stack and self._stack[-1] == rec["span_id"]:
            self._stack.pop()
        else:  # pragma: no cover - misnested close; drop without corrupting
            try:
                self._stack.remove(rec["span_id"])
            except ValueError:
                pass
        self.spans.append(rec)

    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a span; close it by exiting the returned context manager."""
        return _SpanHandle(self, self._open(name, attrs))

    def event(self, name: str, **attrs: Any) -> dict:
        """A zero-duration span (an instant: a fault fired, a cache hit)."""
        rec = self._open(name, attrs)
        self._close(rec)
        return rec

    # ---------------------------------------------------------- propagation

    def context(self) -> dict:
        """The value shipped to pool workers: trace ID + the open span."""
        return {
            "trace_id": self.trace_id,
            "span_id": self._stack[-1] if self._stack else self.root_parent,
        }

    def adopt(self, spans: list[dict]) -> None:
        """Merge spans closed by another tracer (a pool worker's) into this
        trace.  Their parent links already point into this trace via the
        shipped :meth:`context`, so adoption is a plain append."""
        self.spans.extend(spans)

    # -------------------------------------------------------------- export

    def to_records(self) -> list[dict]:
        return list(self.spans)

    def write_jsonl(self, path: str) -> int:
        with open(path, "w") as fh:
            for rec in self.spans:
                fh.write(json.dumps(rec) + "\n")
        return len(self.spans)


def read_spans_jsonl(path: str) -> list[dict]:
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


def validate_trace(spans: list[dict]) -> list[str]:
    """Structural problems in a merged trace (empty list = valid).

    Checks the acceptance bar for cross-process propagation: one trace ID,
    and every parent link resolving to a span in the same list (top-level
    spans — ``parent_id`` ``None`` — are exempt).
    """
    problems: list[str] = []
    if not spans:
        return problems
    ids = {s["span_id"] for s in spans}
    if len(ids) != len(spans):
        problems.append("duplicate span IDs")
    traces = {s["trace_id"] for s in spans}
    if len(traces) > 1:
        problems.append(f"multiple trace IDs: {sorted(traces)}")
    for s in spans:
        parent = s.get("parent_id")
        if parent is not None and parent not in ids:
            problems.append(
                f"span {s['span_id']} ({s['name']}) has unknown parent {parent}"
            )
        if s.get("wall_end") is None:
            problems.append(f"span {s['span_id']} ({s['name']}) never closed")
    return problems


# ------------------------------------------------------------- module state

#: The process-wide active tracer; ``None`` keeps every hook a no-op.
ACTIVE: Optional[SpanTracer] = None


def activate(tracer: SpanTracer) -> SpanTracer:
    global ACTIVE
    ACTIVE = tracer
    return tracer


def deactivate() -> Optional[SpanTracer]:
    global ACTIVE
    tracer, ACTIVE = ACTIVE, None
    return tracer


def span(name: str, **attrs: Any):
    """``with span("phase", key=...):`` — no-op unless a tracer is active."""
    tracer = ACTIVE
    if tracer is None:
        return _NULL_HANDLE
    return tracer.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    """Record an instant span on the active tracer, if any."""
    tracer = ACTIVE
    if tracer is not None:
        tracer.event(name, **attrs)


def current_context() -> Optional[dict]:
    """The active tracer's propagation context, or ``None`` when detached."""
    tracer = ACTIVE
    return None if tracer is None else tracer.context()


# ------------------------------------------------------ pool-worker support


@dataclass
class ChildSpans:
    """Pool-side return envelope: the call's result plus the child spans.

    ``parallel_starmap`` unwraps this in the coordinator and adopts the
    spans into the active trace; the class is module-level so it pickles by
    reference.
    """

    result: Any
    spans: list = field(default_factory=list)


def run_in_child(fn: Callable[..., Any], args: tuple, ctx: dict) -> ChildSpans:
    """Execute ``fn(*args)`` in a pool worker under a propagated trace.

    Activates a fresh tracer continuing ``ctx``'s trace, wraps the call in a
    ``pool:<fn>`` span parented on the coordinator's submitting span, and
    returns both the result and the closed spans for adoption.  The worker's
    ``ACTIVE`` is always reset to ``None`` afterwards — a forked worker
    inherits the coordinator's tracer object, whose spans would otherwise be
    recorded twice.
    """
    tracer = SpanTracer(trace_id=ctx["trace_id"], root_parent=ctx.get("span_id"))
    activate(tracer)
    try:
        with tracer.span(f"pool:{getattr(fn, '__name__', 'call')}"):
            result = fn(*args)
    finally:
        deactivate()
    return ChildSpans(result=result, spans=tracer.spans)


def iter_roots(spans: list[dict]) -> Iterator[dict]:
    """Spans with no parent inside the list (the trace's entry points)."""
    ids = {s["span_id"] for s in spans}
    for s in spans:
        if s.get("parent_id") not in ids:
            yield s
