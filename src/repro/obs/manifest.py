"""Run manifests: provenance for every experiment artefact.

A :class:`RunManifest` pins down everything needed to reproduce one run —
platform, cap configuration (the paper's ``HHBB`` strings plus the actual
watt values), scheduler, operation geometry, RNG seed and code version — and
is written as ``manifest.json`` alongside the run's outputs.  ``repro
report`` reads it back to label its tables (e.g. which GPU sat in which cap
state).
"""

from __future__ import annotations

import json
import platform as _platform
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Optional

MANIFEST_FILENAME = "manifest.json"
MANIFEST_SCHEMA = 1


def code_version(repo_dir: Optional[str] = None) -> str:
    """``git describe``-style version of the running code, best effort."""
    start = Path(repo_dir) if repo_dir else Path(__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=start, capture_output=True, text=True, timeout=5,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    try:
        from repro import __version__

        return f"v{__version__}"
    except ImportError:  # pragma: no cover - repro is always importable here
        return "unknown"


@dataclass(frozen=True)
class RunManifest:
    """Provenance record for one simulated run."""

    platform: str
    scheduler: str
    config: str                      # cap letters, e.g. "HHBB"
    gpu_caps_w: tuple[float, ...]    # resolved watts per GPU
    op: str
    n: int
    nb: int
    precision: str
    scale: str
    seed: int
    cpu_caps_w: dict[str, float] = field(default_factory=dict)
    cache: dict = field(default_factory=dict)  # hit/miss provenance + fingerprint
    version: str = ""
    python: str = field(default_factory=lambda: sys.version.split()[0])
    host: str = field(default_factory=_platform.node)
    created_unix: float = field(default_factory=time.time)
    schema: int = MANIFEST_SCHEMA
    extra: dict = field(default_factory=dict)

    @property
    def gpu_states(self) -> dict[str, str]:
        """Per-GPU cap-state letter, e.g. ``{"gpu0": "H", "gpu1": "L"}``."""
        return {f"gpu{i}": letter for i, letter in enumerate(self.config)}

    def to_dict(self) -> dict:
        doc = asdict(self)
        doc["gpu_caps_w"] = list(self.gpu_caps_w)
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "RunManifest":
        doc = dict(doc)
        doc["gpu_caps_w"] = tuple(doc.get("gpu_caps_w", ()))
        known = {f for f in cls.__dataclass_fields__}
        unknown = {k: v for k, v in doc.items() if k not in known}
        doc = {k: v for k, v in doc.items() if k in known}
        if unknown:
            doc.setdefault("extra", {}).update(unknown)
        return cls(**doc)

    # ------------------------------------------------------------------- io

    def write(self, outdir: str) -> Path:
        path = Path(outdir) / MANIFEST_FILENAME
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def read(cls, rundir: str) -> "RunManifest":
        path = Path(rundir) / MANIFEST_FILENAME
        return cls.from_dict(json.loads(path.read_text()))
