"""Observability layer: metrics, spans, streaming telemetry, exporters.

Only the leaf modules (``metrics``, ``decisions``, ``manifest``, ``spans``,
``stream``) are re-exported here.  They import nothing outside the stdlib,
which keeps this package importable from deep inside the runtime
(``schedulers/dm.py`` pulls in :mod:`repro.obs.decisions` at import time).
The heavier pipeline modules — :mod:`repro.obs.capture`,
:mod:`repro.obs.exporters`, :mod:`repro.obs.report`,
:mod:`repro.obs.watch` — import the runtime themselves and MUST NOT be
imported from this ``__init__`` or the cycle closes; import them directly.
"""

from repro.obs.decisions import CandidateClass, DecisionLog, DecisionRecord
from repro.obs.manifest import RunManifest, code_version
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import ChildSpans, SpanTracer
from repro.obs.stream import (
    OnlineAggregator,
    StreamWriter,
    TelemetryBus,
    WatchdogConfig,
    Watchdogs,
)

__all__ = [
    "CandidateClass",
    "DecisionLog",
    "DecisionRecord",
    "RunManifest",
    "code_version",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ChildSpans",
    "SpanTracer",
    "OnlineAggregator",
    "StreamWriter",
    "TelemetryBus",
    "WatchdogConfig",
    "Watchdogs",
]
