"""Live telemetry: in-process pub/sub bus, streaming writer, online views.

Everything in :mod:`repro.obs` before this module was post-hoc: artifacts
appear when the run finishes.  This module makes the same signals available
*while the run executes*:

* :class:`TelemetryBus` — a tiny synchronous pub/sub hub.  Producers
  (runtime engine, decision log, power sampler, fault injector, experiment
  cache) publish plain-dict events; subscribers see them in publish order.
  Publishing from inside a subscriber (a watchdog raising an anomaly) is
  safe: events queue and drain in order, so an anomaly reaches every
  subscriber after the event that triggered it and before run completion.
* :class:`StreamWriter` — an append-only ``events.jsonl`` writer that
  flushes *during* the run.  A SIGKILL mid-run leaves a readable prefix
  (at most one torn final line, which the readers skip).
* :class:`OnlineAggregator` — windowed rolling state: sim-time p50/p99
  task durations, per-device power, per-worker backlog, cache hit-rate.
* :class:`Watchdogs` — online anomaly rules (idle-gap, throttle-drift,
  cache-miss-storm, backlog-imbalance) evaluated on a sim-clock cadence,
  emitting structured ``anomaly`` events back into the bus mid-run.

The discipline is the same as the rest of the package: stdlib-only, opt-in,
and zero-cost when detached — a runtime built without a bus pays one
``None`` check per hot-path event.  When attached, the budget is tight (the
overhead gate in ``check_regression.py`` demands attached ≤ 1.05× detached
wall time), which is why :func:`jsonline` hand-rolls the common flat-dict
case instead of calling :func:`json.dumps` per event.
"""

from __future__ import annotations

import json
import math
from collections import deque
from typing import Any, Callable, Optional

EVENTS_STREAM_FILENAME = "events.jsonl"

#: Event types worth pushing to disk immediately (rare; operators wait on
#: them).  Bulk types (``interval``, ``decision``, ``power``) batch instead.
FLUSH_NOW_TYPES = frozenset(
    {"run_info", "run_start", "run_end", "anomaly", "fault", "annotation",
     "budget-move"}
)


def jsonline(event: dict, _dumps: Callable[..., str] = json.dumps) -> str:
    """Serialize one flat event dict to a JSON line, fast.

    ``json.dumps`` costs ~3× this on the hot event shapes (measured: 6.6 µs
    vs 2.2 µs per task-interval event), which alone would blow the 5 %
    attached-overhead budget.  Strings that need escaping and non-scalar
    values fall back to ``json.dumps``, so output is always valid JSON and
    round-trips identically.
    """
    parts = []
    for k, v in event.items():
        tv = type(v)
        if tv is str:
            if '"' in v or "\\" in v:
                parts.append(f'"{k}":{_dumps(v)}')
            else:
                parts.append(f'"{k}":"{v}"')
        elif tv is float or tv is int:
            parts.append(f'"{k}":{v!r}')
        elif tv is dict and v:
            # Flat str→number sub-dict (a decision event's backlog
            # snapshot): hand-rolled at ~2.5× the speed of json.dumps.
            # Anything else in the sub-dict bails to the generic encoder.
            sub = []
            for k2, v2 in v.items():
                if (
                    type(k2) is str
                    and type(v2) in (float, int)
                    and '"' not in k2
                    and "\\" not in k2
                ):
                    sub.append(f'"{k2}":{v2!r}')
                else:
                    sub = None
                    break
            if sub is None:
                parts.append(f'"{k}":{_dumps(v, separators=(",", ":"))}')
            else:
                parts.append(f'"{k}":{{' + ",".join(sub) + "}")
        else:
            parts.append(f'"{k}":{_dumps(v, separators=(",", ":"))}')
    return "{" + ",".join(parts) + "}"


class TelemetryBus:
    """Synchronous in-process pub/sub for run telemetry.

    ``clock`` is anything with a ``now`` attribute (the Simulator); events
    published without a ``t`` are stamped with it, so the stream is ordered
    by simulated time as long as producers publish as the sim advances
    (they do — every producer publishes at its own event time).

    ``batch`` bounds delivery latency in events: publishes accumulate and
    fan out to subscribers in one tight loop every ``batch`` events.  The
    default of 1 delivers immediately; the production streaming stack uses
    a larger batch because interleaving subscriber work with the simulator
    hot loop measurably evicts its working set — batch fan-out runs the
    same work ~2× faster (this is most of the attached-overhead budget).
    Operator-facing types (:data:`FLUSH_NOW_TYPES`) always drain at once,
    so a batch never delays the run header, a fault, or an anomaly.

    Task-interval events — ~99% of an attached run's traffic — have a
    typed fast lane, :meth:`publish_interval`, that skips the per-event
    dict: the runtime engine pays one tuple append, and subscribers that
    declare ``on_intervals`` consume whole tuple runs in one call.
    Subscribers without it still receive the equivalent plain-dict
    events, one per interval, so the pub/sub contract is unchanged.
    """

    __slots__ = (
        "clock", "subscribers", "_fanout", "_pending", "_batch", "_draining",
        "n_published",
    )

    def __init__(self, clock: Any = None, batch: int = 1) -> None:
        self.clock = clock
        self.subscribers: list[Callable[[dict], None]] = []
        # (subscriber, its on_intervals batch handler or None), resolved
        # once at subscribe time so the drain loop does no attr probing.
        self._fanout: list[tuple] = []
        self._pending: list = []
        self._batch = max(1, int(batch))
        self._draining = False
        self.n_published = 0

    def subscribe(self, fn: Callable[[dict], None]) -> Callable[[dict], None]:
        """Register ``fn`` to receive every subsequent event, in order."""
        self.subscribers.append(fn)
        self._fanout.append((fn, getattr(fn, "on_intervals", None)))
        return fn

    def publish(self, event: dict) -> None:
        """Deliver ``event`` to every subscriber (within ``batch`` events).

        Re-entrant: a subscriber that publishes (a watchdog raising an
        anomaly) enqueues; the active drain delivers it in the same pass,
        preserving publish order without recursion.
        """
        if "t" not in event:
            clock = self.clock
            event["t"] = clock.now if clock is not None else 0.0
        self.n_published += 1
        pending = self._pending
        pending.append(event)
        if len(pending) >= self._batch or event.get("type") in FLUSH_NOW_TYPES:
            self.drain()

    def publish_interval(
        self, t: float, resource: str, end: float, label: str, task_kind: str
    ) -> None:
        """Fast lane for a completed-task interval (``kind="task"``).

        Equivalent to publishing the corresponding dict event, but the
        hot path pays one tuple append instead of a dict build — the
        runtime engine calls this once per task, and per-event dict
        construction alone was measured to consume most of the ≤1.05×
        attached-overhead budget.
        """
        self.n_published += 1
        pending = self._pending
        pending.append((t, resource, end, label, task_kind))
        if len(pending) >= self._batch:
            self.drain()

    def drain(self) -> None:
        """Fan pending events out to every subscriber, in publish order.

        Events published *during* the drain (anomalies) extend the same
        pass — the index loop observes appends — so causal order holds.
        Consecutive interval tuples are handed to batch-capable
        subscribers as one run; within a run, each subscriber processes
        all of it before the next subscriber starts (the writer sees the
        whole run before the aggregator — publish order per subscriber is
        unchanged, only cross-subscriber interleaving coarsens).
        """
        if self._draining:
            return
        self._draining = True
        try:
            pending = self._pending
            fanout = self._fanout
            i = 0
            while i < len(pending):
                event = pending[i]
                if type(event) is tuple:
                    j = i + 1
                    while j < len(pending) and type(pending[j]) is tuple:
                        j += 1
                    items = pending[i:j]
                    as_dicts = None
                    for fn, fast in fanout:
                        if fast is not None:
                            fast(items)
                        else:
                            if as_dicts is None:
                                as_dicts = [_interval_event(it) for it in items]
                            for ev in as_dicts:
                                fn(ev)
                    i = j
                else:
                    for fn, _ in fanout:
                        fn(event)
                    i += 1
            pending.clear()
        finally:
            self._draining = False

    def close(self) -> None:
        """Drain, then flush/close any subscriber that supports it."""
        self.drain()
        for fn in self.subscribers:
            closer = getattr(fn, "close", None) or getattr(
                getattr(fn, "__self__", None), "close", None
            )
            if closer is not None:
                closer()


#: One formatting pass for the dominant event shape; ``%.10g`` keeps float
#: formatting inside the C-level ``%`` operator (``repr`` per float costs
#: more than the whole format) at 10 significant digits — nanoseconds at
#: sim-time scales, far below anything a consumer derives from the stream.
_INTERVAL_FMT = (
    '{"t":%.10g,"type":"interval","resource":"%s","kind":"%s","end":%.10g,'
    '"label":"%s","task_kind":"%s"}'
)

#: Same line for the tuple fast lane (:meth:`TelemetryBus.publish_interval`),
#: where ``kind`` is always ``"task"``.
_TASK_INTERVAL_FMT = (
    '{"t":%.10g,"type":"interval","resource":"%s","kind":"task","end":%.10g,'
    '"label":"%s","task_kind":"%s"}'
)


def _interval_event(item: tuple) -> dict:
    """Materialize a fast-lane interval tuple as the equivalent dict event
    (what a generic subscriber — or the JSONL fallback — expects)."""
    t, resource, end, label, task_kind = item
    return {
        "t": t, "type": "interval", "resource": resource, "kind": "task",
        "end": end, "label": label, "task_kind": task_kind,
    }


def _interval_line(event: dict) -> Optional[str]:
    """Serialize the dominant hot-path event shape with one format.

    Task-interval events are ~99% of an attached run's stream, and the
    generic :func:`jsonline` key loop costs ~2.5× this single format pass
    (measured: 3.1 µs vs 1.2 µs on realistic varied events).  Returns
    ``None`` for anything that is not exactly the engine's interval shape
    with escape-free strings and numeric timestamps — the caller falls
    back to :func:`jsonline`, so the output is always valid JSON.
    """
    try:
        if len(event) != 7:
            return None
        # One concatenation + two scans beats four per-string checks; a
        # non-str value raises TypeError straight into the fallback, as
        # does a non-numeric timestamp hitting ``%.10g`` below.
        strs = (
            event["resource"] + event["kind"]
            + event["label"] + event["task_kind"]
        )
        if '"' in strs or "\\" in strs:
            return None
        return _INTERVAL_FMT % (
            event["t"], event["resource"], event["kind"], event["end"],
            event["label"], event["task_kind"],
        )
    except (KeyError, TypeError):
        return None


class StreamWriter:
    """Append-only JSONL subscriber, crash-tolerant by construction.

    Events batch in memory and hit the file every ``flush_every`` events —
    except the first event and the rare operator-facing types in
    :data:`FLUSH_NOW_TYPES`, which flush immediately so ``repro watch``
    sees the run header, faults and anomalies without delay.  Only whole
    lines are written, so a kill leaves valid JSONL plus at most one torn
    tail (the OS may split the final ``write``), which
    :func:`repro.obs.exporters.read_events_jsonl_tolerant` skips.
    """

    def __init__(self, path: str, flush_every: int = 64) -> None:
        self.path = str(path)
        self._fh = open(self.path, "w")
        self._buf: list[str] = []
        self._flush_every = int(flush_every)
        self.n_written = 0
        self._closed = False

    def __call__(self, event: dict) -> None:
        etype = event["type"]
        if etype == "interval":
            line = _interval_line(event) or jsonline(event)
        else:
            line = jsonline(event)
        buf = self._buf
        buf.append(line)
        self.n_written += 1
        if (
            len(buf) >= self._flush_every
            or self.n_written == 1
            or etype in FLUSH_NOW_TYPES
        ):
            self.flush()

    #: Quote count of one clean fast-lane line: the format contributes a
    #: fixed number, and the three ``%s`` payloads are supposed to add
    #: none.  Any embedded quote breaks the count; see :meth:`on_intervals`.
    _CLEAN_QUOTES = _TASK_INTERVAL_FMT.count('"')

    def on_intervals(self, items: list) -> None:
        """Tuple fast lane — same lines the dict path would produce.

        The whole run is serialized with ``map(fmt.__mod__, items)`` and
        validated with one C-level scan of the joined chunk (a quote
        count that any embedded ``"`` breaks, plus a ``\\`` search)
        instead of per-item Python checks — that is the difference
        between ~1.2 µs and ~0.7 µs per event, which the ≤1.05×
        attached-overhead gate actually notices.  Any suspicious chunk
        (or a non-numeric timestamp raising ``TypeError``) is redone
        item by item through the escaping-safe :func:`jsonline` path, so
        output is always valid JSON either way.
        """
        first = self.n_written == 0
        buf = self._buf
        try:
            lines = list(map(_TASK_INTERVAL_FMT.__mod__, items))
            chunk = "\n".join(lines)
            if (
                chunk.count('"') != self._CLEAN_QUOTES * len(items)
                or "\\" in chunk
            ):
                raise TypeError
            buf.extend(lines)
        except TypeError:
            for item in items:
                buf.append(jsonline(_interval_event(item)))
        self.n_written += len(items)
        if first or len(buf) >= self._flush_every:
            self.flush()

    def flush(self) -> None:
        if self._buf:
            self._fh.write("\n".join(self._buf) + "\n")
            self._buf.clear()
        self._fh.flush()

    def close(self) -> None:
        if not self._closed:
            self.flush()
            self._fh.close()
            self._closed = True


def _quantile(sorted_vals: list, q: float) -> float:
    """Nearest-rank quantile on an already-sorted list (0 when empty)."""
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, max(0, math.ceil(q * len(sorted_vals)) - 1))
    return sorted_vals[idx]


class OnlineAggregator:
    """Rolling view of the run, updated per event, summarized on demand.

    Per-event work is O(1) appends and scalar updates; anything that sorts
    or scans (quantiles, windows) happens only in :meth:`snapshot` or a
    cadence-gated watchdog evaluation, keeping the hot path inside the
    attached-overhead budget.
    """

    #: Bounded history so long runs stay O(1) memory.
    TASK_WINDOW = 4096

    def __init__(self) -> None:
        self.now = 0.0
        self.run_info: dict = {}
        self.run_done = False
        self.makespan: Optional[float] = None
        self.n_events = 0
        # tasks: (end_time, duration, worker) — recent completions
        self.tasks: deque = deque(maxlen=self.TASK_WINDOW)
        self.tasks_done = 0
        self.last_task_end = 0.0
        # Per-worker duration stats for drift detection, fused into one
        # ``[count, dur_sum, recent_durs, last_end]`` record so the hot
        # interval path pays a single hash lookup instead of four.
        self.workers: dict[str, list] = {}
        # per-device power (latest sample) + caps from the run_start event
        self.power_w: dict[str, float] = {}
        self.total_power_w = 0.0
        self.gpu_caps: list[float] = []
        self.n_tasks_expected: Optional[int] = None
        # latest backlog snapshot from the decision stream
        self.backlog: dict[str, int] = {}
        # cache lookup outcomes, 1 = hit
        self.cache_window: deque = deque(maxlen=256)
        self.cache_hits = 0
        self.cache_lookups = 0
        self.anomalies: list[dict] = []
        self.faults: list[dict] = []
        # governor state (from budget-move events): latest per-device caps,
        # the global budget, and a transition counter per move kind
        self.budget_w: Optional[float] = None
        self.governed_caps: dict[str, float] = {}
        self.budget_moves: dict[str, int] = {}

    # ------------------------------------------------------------- ingest

    def __call__(self, event: dict) -> None:
        etype = event["type"]
        if etype == "interval":
            self.on_interval((event["t"], event["resource"], event["end"]))
            return
        self.n_events += 1
        t = event["t"]
        if t > self.now:
            self.now = t
        if etype == "decision":
            backlog = event.get("backlog")
            if backlog:
                self.backlog = backlog
        elif etype == "power":
            total = 0.0
            for key, val in event.items():
                if key not in ("t", "type", "total_w"):
                    self.power_w[key] = val
                    total += val
            self.total_power_w = event.get("total_w", total)
        elif etype == "cache":
            hit = 1 if event.get("result") == "hit" else 0
            self.cache_window.append(hit)
            self.cache_hits += hit
            self.cache_lookups += 1
        elif etype == "fault":
            self.faults.append(event)
        elif etype == "anomaly":
            self.anomalies.append(event)
        elif etype == "budget-move":
            kind = event.get("kind", "move")
            self.budget_moves[kind] = self.budget_moves.get(kind, 0) + 1
            if "budget_w" in event:
                self.budget_w = event["budget_w"]
            caps = event.get("caps")
            if caps:
                self.governed_caps.update(caps)
        elif etype == "run_info":
            self.run_info = {
                k: v for k, v in event.items() if k not in ("t", "type")
            }
        elif etype == "run_start":
            self.gpu_caps = list(event.get("gpu_caps") or ())
            self.n_tasks_expected = event.get("n_tasks")
        elif etype == "run_end":
            self.run_done = True
            self.makespan = event.get("makespan", t)

    def on_interval(self, item: tuple) -> None:
        """Tuple fast lane — identical state updates to the dict path
        (which delegates here; only ``item[:3]`` is read, so both the
        engine's 5-tuple and the dict path's 3-tuple work)."""
        t = item[0]
        resource = item[1]
        end = item[2]
        self.n_events += 1
        if t > self.now:
            self.now = t
        dur = end - t
        self.tasks.append((end, dur, resource))
        self.tasks_done += 1
        if end > self.last_task_end:
            self.last_task_end = end
        st = self.workers.get(resource)
        if st is None:
            self.workers[resource] = [1, dur, deque((dur,), maxlen=16), end]
        else:
            st[0] += 1
            st[1] += dur
            st[2].append(dur)
            st[3] = end

    def on_intervals(self, items: list) -> None:
        """Batch form of :meth:`on_interval` for whole tuple runs — the
        same state transitions, with the loop locals hoisted."""
        now = self.now
        last_end = self.last_task_end
        tasks_append = self.tasks.append
        workers = self.workers
        for item in items:
            t = item[0]
            resource = item[1]
            end = item[2]
            if t > now:
                now = t
            dur = end - t
            tasks_append((end, dur, resource))
            if end > last_end:
                last_end = end
            st = workers.get(resource)
            if st is None:
                workers[resource] = [1, dur, deque((dur,), maxlen=16), end]
            else:
                st[0] += 1
                st[1] += dur
                st[2].append(dur)
                st[3] = end
        self.now = now
        self.last_task_end = last_end
        self.n_events += len(items)
        self.tasks_done += len(items)

    # ----------------------------------------------------------- summaries

    def duration_quantiles(self, window_s: Optional[float] = None) -> dict:
        """p50/p99 of recent task durations (sim seconds).

        ``window_s`` restricts to tasks that *ended* within the trailing
        window of simulated time; ``None`` uses the whole retained deque.
        """
        if window_s is None:
            durs = sorted(d for _, d, _ in self.tasks)
        else:
            cutoff = self.now - window_s
            durs = sorted(d for end, d, _ in self.tasks if end >= cutoff)
        return {
            "n": len(durs),
            "p50": _quantile(durs, 0.50),
            "p99": _quantile(durs, 0.99),
        }

    def cache_hit_rate(self) -> Optional[float]:
        """Hit rate over the rolling window (``None`` before any lookup)."""
        if not self.cache_window:
            return None
        return sum(self.cache_window) / len(self.cache_window)

    def snapshot(self) -> dict:
        """One dashboard frame; everything ``repro watch`` renders."""
        quant = self.duration_quantiles()
        return {
            "t": self.now,
            "run_info": dict(self.run_info),
            "run_done": self.run_done,
            "makespan": self.makespan,
            "n_events": self.n_events,
            "tasks_done": self.tasks_done,
            "n_tasks_expected": self.n_tasks_expected,
            "gpu_caps": list(self.gpu_caps),
            "task_p50_s": quant["p50"],
            "task_p99_s": quant["p99"],
            "power_w": dict(self.power_w),
            "total_power_w": self.total_power_w,
            "backlog": dict(self.backlog),
            "cache_hit_rate": self.cache_hit_rate(),
            "cache_lookups": self.cache_lookups,
            "n_anomalies": len(self.anomalies),
            "n_faults": len(self.faults),
            "budget_w": self.budget_w,
            "governed_caps": dict(self.governed_caps),
            "n_budget_moves": sum(self.budget_moves.values()),
        }


class WatchdogConfig:
    """Thresholds for the online anomaly rules (sim-time units)."""

    __slots__ = (
        "eval_period_s",
        "rearm_s",
        "idle_gap_s",
        "drift_ratio",
        "drift_min_samples",
        "cache_min_lookups",
        "cache_max_miss_rate",
        "imbalance_ratio",
        "imbalance_min_s",
        "budget_tolerance_w",
    )

    def __init__(
        self,
        eval_period_s: float = 0.02,
        rearm_s: float = 0.5,
        idle_gap_s: float = 0.25,
        drift_ratio: float = 1.25,
        drift_min_samples: int = 6,
        cache_min_lookups: int = 10,
        cache_max_miss_rate: float = 0.5,
        imbalance_ratio: float = 4.0,
        imbalance_min_s: float = 0.05,
        budget_tolerance_w: float = 0.5,
    ) -> None:
        self.eval_period_s = eval_period_s
        self.rearm_s = rearm_s
        self.idle_gap_s = idle_gap_s
        self.drift_ratio = drift_ratio
        self.drift_min_samples = drift_min_samples
        self.cache_min_lookups = cache_min_lookups
        self.cache_max_miss_rate = cache_max_miss_rate
        self.imbalance_ratio = imbalance_ratio
        self.imbalance_min_s = imbalance_min_s
        self.budget_tolerance_w = budget_tolerance_w


class Watchdogs:
    """Online anomaly detection over an :class:`OnlineAggregator`.

    Subscribed to the same bus as the aggregator (after it, so state is
    current when rules run).  Rules are evaluated at most once per
    ``eval_period_s`` of simulated time; each (rule, target) pair re-arms
    only after ``rearm_s``, so a persistent condition raises one anomaly
    per window instead of one per event.  Anomalies publish back into the
    bus — the re-entrant queue delivers them to every subscriber (writer
    included) immediately after the triggering event, which is what makes
    them visible in the live stream *before* run completion.
    """

    def __init__(
        self,
        aggregator: OnlineAggregator,
        bus: TelemetryBus,
        config: Optional[WatchdogConfig] = None,
    ) -> None:
        self.agg = aggregator
        self.bus = bus
        self.config = config or WatchdogConfig()
        self.raised: list[dict] = []
        self._last_eval = -math.inf
        self._last_fire: dict[tuple, float] = {}
        # Own per-worker end times: the aggregator sits *before* us on the
        # bus, so its worker_last_end already includes the current event —
        # the idle-gap rule needs the end of the worker's *previous* task.
        self._prev_end: dict[str, float] = {}
        # Hot-path threshold copies: one attribute load per event instead
        # of a config-object chain (the attached-overhead budget is ~µs).
        self._eval_period_s = self.config.eval_period_s
        self._idle_gap_s = self.config.idle_gap_s

    # Hot path: a couple of float compares per event unless a gap is seen
    # or the cadence gate opens.
    def __call__(self, event: dict) -> None:
        etype = event["type"]
        if etype == "interval":
            self.on_interval((event["t"], event["resource"], event["end"]))
            return
        if etype == "anomaly":
            return
        t = event["t"]
        if t - self._last_eval < self._eval_period_s:
            return
        self._last_eval = t
        if self.agg.run_done:
            return
        self._check_throttle_drift(t)
        self._check_cache_miss_storm(t)
        self._check_backlog_imbalance(t)
        self._check_budget_violation(t)

    def on_interval(self, item: tuple) -> None:
        """Tuple fast lane — same rules as the dict path (which delegates
        here).  Idle-gap is edge-triggered on the task that ends the gap,
        so its cheap bail-out runs per event; the other rules sit behind
        the cadence gate."""
        t = item[0]
        worker = item[1]
        prev_end = self._prev_end.get(worker)
        self._prev_end[worker] = item[2]
        if prev_end is not None and t - prev_end > self._idle_gap_s:
            self._check_idle_gap(worker, prev_end, t)
        if t - self._last_eval < self._eval_period_s:
            return
        self._last_eval = t
        if self.agg.run_done:
            return
        self._check_throttle_drift(t)
        self._check_cache_miss_storm(t)
        self._check_backlog_imbalance(t)
        self._check_budget_violation(t)

    def on_intervals(self, items: list) -> None:
        """Batch form of :meth:`on_interval`: idle-gap stays edge-triggered
        per task (order-correct within the run), while the cadence-gated
        rules evaluate once per run at its latest timestamp — the same
        granularity the bus's batching already imposes on delivery."""
        prev_ends = self._prev_end
        idle_gap_s = self._idle_gap_s
        for item in items:
            t = item[0]
            worker = item[1]
            prev_end = prev_ends.get(worker)
            prev_ends[worker] = item[2]
            if prev_end is not None and t - prev_end > idle_gap_s:
                self._check_idle_gap(worker, prev_end, t)
        t = items[-1][0]
        if t - self._last_eval < self._eval_period_s:
            return
        self._last_eval = t
        if self.agg.run_done:
            return
        self._check_throttle_drift(t)
        self._check_cache_miss_storm(t)
        self._check_backlog_imbalance(t)
        self._check_budget_violation(t)

    # ------------------------------------------------------------- raising

    def _fire(self, t: float, rule: str, target: str, detail: str, **data) -> None:
        key = (rule, target)
        last = self._last_fire.get(key)
        if last is not None and t - last < self.config.rearm_s:
            return
        self._last_fire[key] = t
        anomaly = {
            "t": t,
            "type": "anomaly",
            "rule": rule,
            "target": target,
            "detail": detail,
            **data,
        }
        self.raised.append(anomaly)
        self.bus.publish(anomaly)

    # --------------------------------------------------------------- rules

    def _check_idle_gap(self, worker: str, prev_end: float, start: float) -> None:
        """A worker sat idle while peers made progress (called only once
        a gap above threshold is seen; the cheap test lives in the hot
        ``__call__`` path)."""
        # Only anomalous if someone else finished work inside the gap —
        # a globally quiet stretch is a dependency stall, not an imbalance.
        peer_ends = [
            st[3] for w, st in self.agg.workers.items() if w != worker
        ]
        if not peer_ends or max(peer_ends) <= prev_end:
            return
        gap = start - prev_end
        self._fire(
            start,
            "idle-gap",
            worker,
            f"{worker} idle {gap:.3f}s while peers ran",
            gap_s=round(gap, 6),
        )

    def _check_throttle_drift(self, t: float) -> None:
        """Recent task durations on one worker drifting above its own
        long-run mean — the online signature of an unreported throttle."""
        cfg = self.config
        for worker, st in self.agg.workers.items():
            count, dur_sum, recent, _ = st
            n_recent = len(recent)
            if n_recent < cfg.drift_min_samples or count < 2 * n_recent:
                continue
            recent_sum = sum(recent)
            base_n = count - n_recent
            base_mean = (dur_sum - recent_sum) / base_n
            if base_mean <= 0.0:
                continue
            ratio = (recent_sum / n_recent) / base_mean
            if ratio >= cfg.drift_ratio:
                self._fire(
                    t,
                    "throttle-drift",
                    worker,
                    f"{worker} recent tasks {ratio:.2f}x its baseline",
                    ratio=round(ratio, 4),
                    baseline_s=round(base_mean, 6),
                )

    def _check_cache_miss_storm(self, t: float) -> None:
        window = self.agg.cache_window
        if len(window) < self.config.cache_min_lookups:
            return
        miss_rate = 1.0 - sum(window) / len(window)
        if miss_rate > self.config.cache_max_miss_rate:
            self._fire(
                t,
                "cache-miss-storm",
                "cache",
                f"cache miss rate {miss_rate:.0%} over last {len(window)} lookups",
                miss_rate=round(miss_rate, 4),
            )

    def _check_budget_violation(self, t: float) -> None:
        """The governor's tracked caps sum past the global watt budget —
        the one invariant a power-budget controller must never break.  The
        governor treats this anomaly as its safe-mode trigger."""
        budget = self.agg.budget_w
        caps = self.agg.governed_caps
        if budget is None or not caps:
            return
        total = sum(caps.values())
        if total > budget + self.config.budget_tolerance_w:
            self._fire(
                t,
                "budget-violation",
                "governor",
                f"caps total {total:.1f}W exceed budget {budget:.1f}W",
                total_w=round(total, 3),
                budget_w=round(budget, 3),
            )

    def _check_backlog_imbalance(self, t: float) -> None:
        """One worker's queued seconds of work dwarfing another's — the
        signature of capped-GPU pile-up the paper's dmdas avoids."""
        cfg = self.config
        backlog = self.agg.backlog
        if len(backlog) < 2:
            return
        depths = backlog.values()
        deepest = max(depths)
        shallowest = min(depths)
        if deepest < cfg.imbalance_min_s or deepest - shallowest < cfg.imbalance_min_s:
            return
        ratio = deepest / shallowest if shallowest > 0.0 else math.inf
        if ratio >= cfg.imbalance_ratio:
            worker = max(backlog, key=lambda w: backlog[w])
            self._fire(
                t,
                "backlog-imbalance",
                worker,
                f"backlog {deepest:.3f}s on {worker} vs {shallowest:.3f}s elsewhere",
                deepest_s=round(deepest, 6),
                shallowest_s=round(shallowest, 6),
            )


# ------------------------------------------------------------ run identity


def run_info_from_manifest(manifest: Any) -> dict:
    """Flatten a :class:`~repro.obs.manifest.RunManifest` to the label set
    every dashboard needs to identify a series: version, cache fingerprint,
    scheduler, platform, config and seed."""
    cache = getattr(manifest, "cache", None) or {}
    return {
        "version": str(manifest.version or "unknown"),
        "platform": str(manifest.platform),
        "scheduler": str(manifest.scheduler),
        "config": str(manifest.config),
        "op": str(manifest.op),
        "seed": str(manifest.seed),
        "cache_fingerprint": str(cache.get("fingerprint", "") or "none"),
    }


def publish_run_info(registry: Any, info: dict) -> None:
    """Emit the ``repro_run_info`` identity gauge (value always 1; the
    labels are the payload, Prometheus ``*_info`` convention)."""
    registry.gauge(
        "repro_run_info",
        help="Run identity labels (value is always 1)",
        labels=info,
    ).set(1.0)


def run_info_event(info: dict, t: float = 0.0) -> dict:
    """The streamed header form of the same identity labels."""
    return {"t": t, "type": "run_info", **info}
