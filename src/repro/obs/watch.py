"""``repro watch``: tail a (possibly still-running) streamed run directory.

A streamed run (``repro trace --stream`` / ``repro chaos --stream``) writes
``manifest.json`` up front and appends to ``events.jsonl`` while it
executes.  This module turns that file into a refreshing plain-text
dashboard:

- :class:`StreamTail` — incremental JSONL reader.  Remembers its byte
  offset between polls, keeps a partial final line buffered until its
  newline arrives, and counts lines that never parse (the torn tail of a
  killed run).
- :func:`render_dashboard` — one text frame from an
  :class:`~repro.obs.stream.OnlineAggregator` snapshot: run identity,
  progress, per-GPU power vs cap bars, per-worker backlog bars, the cache
  hit-rate and the anomaly feed.
- :func:`watch_command` — the CLI loop: poll, feed the aggregator, redraw.
  ``follow=False`` renders a single frame of whatever the stream holds so
  far (works on completed and killed runs alike); ``follow=True`` keeps
  polling until the ``run_end`` event lands or a timeout expires.

Everything here is read-only over the run directory, so it is safe to
point at a directory owned by a live process on any platform — the writer
only ever appends whole lines.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Callable, Optional

from repro.obs.exporters import EVENTS_FILENAME, RESULT_FILENAME
from repro.obs.manifest import MANIFEST_FILENAME
from repro.obs.stream import OnlineAggregator

#: Width of the power/backlog bars in dashboard frames.
BAR_WIDTH = 22


class StreamTail:
    """Incremental reader for an append-only JSONL stream.

    Each :meth:`poll` returns the events appended since the previous poll.
    A line whose newline has not arrived yet stays buffered — it is *not*
    torn, just in flight.  A complete line that fails to parse is torn and
    counted in :attr:`n_torn`; :attr:`pending_partial` reports whether the
    buffer still holds an unterminated fragment (a killed run's tail).
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self.n_torn = 0
        self._offset = 0
        self._buf = ""

    @property
    def pending_partial(self) -> bool:
        return bool(self._buf.strip())

    def poll(self) -> list[dict]:
        """Read and parse whatever has been appended since the last poll."""
        try:
            fh = open(self.path)
        except FileNotFoundError:
            return []
        with fh:
            fh.seek(self._offset)
            chunk = fh.read()
            self._offset = fh.tell()
        if not chunk:
            return []
        lines = (self._buf + chunk).split("\n")
        # The final element is the text after the last newline: empty when
        # the chunk ended cleanly, otherwise a partial line to carry over.
        self._buf = lines.pop()
        events: list[dict] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                self.n_torn += 1
        return events


def _bar(value: float, full: float, width: int = BAR_WIDTH) -> str:
    """A ``#``/``.`` bar of ``width`` cells, clamped to [0, full]."""
    if full <= 0.0:
        return "." * width
    filled = int(round(width * min(1.0, max(0.0, value / full))))
    return "#" * filled + "." * (width - filled)


def render_dashboard(
    snapshot: dict,
    rundir: str = "",
    n_torn: int = 0,
    partial_tail: bool = False,
    max_anomalies: int = 6,
) -> str:
    """One plain-text dashboard frame from an aggregator snapshot."""
    info = snapshot.get("run_info") or {}
    lines: list[str] = []
    title = str(rundir) or "stream"
    lines.append(f"== repro watch :: {title} ==")
    if info:
        lines.append(
            f"platform {info.get('platform', '?')}"
            f"  config {info.get('config', '?')}"
            f"  scheduler {info.get('scheduler', '?')}"
            f"  seed {info.get('seed', '?')}"
            f"  version {info.get('version', '?')}"
        )
    state = "DONE" if snapshot.get("run_done") else "RUNNING"
    expected = snapshot.get("n_tasks_expected")
    done = snapshot.get("tasks_done", 0)
    progress = f"{done}"
    if expected:
        progress = f"{done}/{expected}"
    lines.append(
        f"[{state}] sim t={snapshot.get('t', 0.0):.4f}s"
        f"  events={snapshot.get('n_events', 0)}"
        f"  tasks={progress}"
        f"  p50={snapshot.get('task_p50_s', 0.0) * 1e3:.2f}ms"
        f"  p99={snapshot.get('task_p99_s', 0.0) * 1e3:.2f}ms"
    )
    makespan = snapshot.get("makespan")
    if makespan is not None:
        lines.append(f"makespan {makespan:.4f}s")

    power = snapshot.get("power_w") or {}
    caps = snapshot.get("gpu_caps") or []
    gpu_devices = sorted(d for d in power if d.startswith("gpu"))
    if gpu_devices:
        lines.append("-- power vs cap --")
        for dev in gpu_devices:
            idx = int(dev.removeprefix("gpu")) if dev[3:].isdigit() else -1
            cap = caps[idx] if 0 <= idx < len(caps) else 0.0
            watts = power[dev]
            cap_txt = f"{cap:5.0f}W cap" if cap else "   no cap"
            lines.append(
                f"  {dev:<6} {_bar(watts, cap or watts)} {watts:6.1f}W / {cap_txt}"
            )
        other = [d for d in sorted(power) if not d.startswith("gpu")]
        if other:
            row = "  ".join(f"{d}={power[d]:.1f}W" for d in other)
            lines.append(f"  other: {row}")
        lines.append(f"  total: {snapshot.get('total_power_w', 0.0):.1f}W")

    backlog = snapshot.get("backlog") or {}
    if backlog:
        deepest = max(backlog.values()) or 1.0
        busy = {w: d for w, d in backlog.items() if d > 0.0}
        lines.append("-- backlog (queued est. seconds) --")
        for worker in sorted(busy):
            depth = busy[worker]
            lines.append(
                f"  {worker:<8} {_bar(depth, deepest)} {depth:8.4f}s"
            )
        n_idle = len(backlog) - len(busy)
        if n_idle:
            lines.append(f"  ({n_idle} worker(s) with empty backlog)")

    rate = snapshot.get("cache_hit_rate")
    if rate is not None:
        lines.append(
            f"cache: {snapshot.get('cache_lookups', 0)} lookups,"
            f" hit rate {rate:.0%} (rolling)"
        )
    if snapshot.get("n_faults"):
        lines.append(f"faults observed: {snapshot['n_faults']}")

    anomalies = snapshot.get("anomalies") or []
    n_anoms = snapshot.get("n_anomalies", len(anomalies))
    if n_anoms:
        lines.append(f"-- anomalies ({n_anoms}) --")
        for event in anomalies[-max_anomalies:]:
            lines.append(
                f"  {event.get('t', 0.0):.4f}s  {event.get('rule', '?')}"
                f"  {event.get('target', '?')}: {event.get('detail', '')}"
            )
    if n_torn or partial_tail:
        frags = []
        if n_torn:
            frags.append(f"{n_torn} torn line(s) skipped")
        if partial_tail:
            frags.append("unterminated tail buffered (run killed mid-write?)")
        lines.append(f"[stream] {'; '.join(frags)}")
    return "\n".join(lines) + "\n"


def _snapshot_with_feed(agg: OnlineAggregator) -> dict:
    """Aggregator snapshot plus the raw anomaly events for the feed."""
    snap = agg.snapshot()
    snap["anomalies"] = list(agg.anomalies)
    return snap


def watch_command(
    rundir: str,
    follow: bool = False,
    interval_s: float = 0.5,
    timeout_s: Optional[float] = None,
    out: Optional[Callable[[str], None]] = None,
    clear: bool = True,
) -> OnlineAggregator:
    """Tail ``rundir/events.jsonl`` and render the dashboard.

    One frame per poll that saw new events (always at least one frame).
    Without ``follow`` this renders the current state of the stream and
    returns — valid for live, completed and killed runs.  With ``follow``
    it keeps polling until the run's ``run_end`` event arrives, the
    ``result.json`` appears (post-hoc runs write no stream events), or
    ``timeout_s`` expires.  Returns the aggregator for inspection.
    """
    path = Path(rundir)
    if not (path / MANIFEST_FILENAME).exists() and not (
        path / EVENTS_FILENAME
    ).exists():
        raise FileNotFoundError(
            f"{rundir}: no manifest.json or events.jsonl — not a run directory"
        )
    emit = out if out is not None else sys.stdout.write
    tail = StreamTail(str(path / EVENTS_FILENAME))
    agg = OnlineAggregator()

    def frame() -> None:
        if clear and out is None:
            emit("\x1b[2J\x1b[H")
        emit(render_dashboard(
            _snapshot_with_feed(agg),
            rundir=str(rundir),
            n_torn=tail.n_torn,
            partial_tail=tail.pending_partial,
        ))

    deadline = None
    if timeout_s is not None:
        deadline = time.monotonic() + timeout_s
    rendered = False
    while True:
        for event in tail.poll():
            agg(event)
            rendered = False
        if not rendered:
            frame()
            rendered = True
        if not follow:
            return agg
        if agg.run_done or (path / RESULT_FILENAME).exists():
            # Drain anything written between the run_end flush and now.
            for event in tail.poll():
                agg(event)
            frame()
            return agg
        if deadline is not None and time.monotonic() >= deadline:
            emit(f"[stream] timeout after {timeout_s:.1f}s; run not finished\n")
            return agg
        time.sleep(interval_s)


def wait_for_run_end(
    rundir: str,
    timeout_s: Optional[float] = None,
    interval_s: float = 0.5,
) -> bool:
    """Block until ``rundir`` holds a finished run; True if it finished.

    Finished means ``result.json`` exists — the last artefact both the
    streamed and post-hoc paths write after the run body completes.  Used
    by ``repro report --follow`` to render the final report the moment a
    live run lands.
    """
    path = Path(rundir) / RESULT_FILENAME
    deadline = None
    if timeout_s is not None:
        deadline = time.monotonic() + timeout_s
    while not path.exists():
        if deadline is not None and time.monotonic() >= deadline:
            return False
        time.sleep(interval_s)
    return True
