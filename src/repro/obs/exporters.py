"""Exporters: JSONL event stream and enriched Perfetto traces.

Three consumers of one run's telemetry:

- :func:`write_events_jsonl` — a single time-ordered JSONL stream merging
  trace intervals, instant points, scheduler decisions and power samples;
  ``repro report`` reads this back, and it greps/jqs well.
- :func:`backlog_counter_tracks` — per-worker backlog series recovered from
  the decision log's backlog snapshots.
- :func:`enriched_chrome_trace` — the Perfetto document with counter tracks
  (per-device instantaneous power, per-worker backlog) attached, so power
  dips render aligned with cap states and task rows.

Prometheus text snapshots come from
:meth:`repro.obs.metrics.MetricsRegistry.to_prometheus`.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.obs.decisions import DecisionLog
from repro.sim.tracing import Tracer
from repro.tools.chrometrace import CounterTrack, to_chrome_trace

EVENTS_FILENAME = "events.jsonl"
TRACE_FILENAME = "trace.json"
DECISIONS_FILENAME = "decisions.jsonl"
METRICS_FILENAME = "metrics.prom"
RESULT_FILENAME = "result.json"
FAULTS_FILENAME = "faults.jsonl"
CHAOS_FILENAME = "chaos.json"
GOVERN_FILENAME = "govern.json"


def iter_events(
    tracer: Optional[Tracer] = None,
    decisions: Optional[DecisionLog] = None,
    sampler=None,
    faults=None,
) -> list[dict]:
    """Merge telemetry sources into one time-sorted list of event dicts.

    Every event carries ``t`` (simulated seconds) and ``type`` (``interval``,
    ``point``, ``decision``, ``power`` or ``fault``); ``sampler`` is anything
    with a ``samples`` list of
    :class:`~repro.tools.powertrace.PowerSample`, ``faults`` an iterable of
    fault/recovery record dicts each carrying a ``t`` key (see
    :mod:`repro.faults`).
    """
    events: list[dict] = []
    if tracer is not None:
        for iv in tracer.intervals:
            events.append({
                "t": iv.start, "type": "interval", "resource": iv.resource,
                "kind": iv.kind, "end": iv.end, "label": iv.label, **iv.info,
            })
        for point in tracer.points:
            events.append({
                "t": point.time, "type": "point", "resource": point.resource,
                "kind": point.kind, "label": point.label, **point.info,
            })
    if decisions is not None:
        for rec in decisions:
            events.append({"t": rec.time, "type": "decision", **rec.to_record()})
    if sampler is not None:
        for sample in sampler.samples:
            events.append({
                "t": sample.time_s, "type": "power",
                "total_w": sample.total_w, **sample.device_w,
            })
    if faults is not None:
        for rec in faults:
            events.append({"t": rec["t"], "type": "fault",
                           **{k: v for k, v in rec.items() if k != "t"}})
    events.sort(key=lambda e: e["t"])
    return events


def write_events_jsonl(
    path: str,
    tracer: Optional[Tracer] = None,
    decisions: Optional[DecisionLog] = None,
    sampler=None,
    faults=None,
) -> int:
    """Write the merged event stream; returns the number of events."""
    events = iter_events(tracer, decisions, sampler, faults)
    with open(path, "w") as fh:
        for event in events:
            fh.write(json.dumps(event) + "\n")
    return len(events)


def read_events_jsonl(path: str) -> list[dict]:
    events, _ = read_events_jsonl_tolerant(path)
    return events


def read_events_jsonl_tolerant(path: str) -> tuple[list[dict], int]:
    """Read an event stream, skipping torn lines: ``(events, n_skipped)``.

    The streaming writer makes mid-write files a *normal* state — a run
    killed between flushes (or read while flushing) leaves a truncated
    final line.  Any line that fails to parse is counted and skipped
    instead of raising, so readers always see the valid prefix.
    """
    events: list[dict] = []
    n_skipped = 0
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                n_skipped += 1
    return events, n_skipped


def backlog_counter_tracks(decisions: DecisionLog) -> list[CounterTrack]:
    """Per-worker backlog (seconds of queued estimated work) over time.

    Sampled at decision times — exactly the values the scheduler folded
    into its costs, so the tracks explain the decisions they sit next to.
    """
    series: dict[str, list[tuple[float, float]]] = {}
    for rec in decisions:
        for worker, backlog in rec.backlog_snapshot().items():
            series.setdefault(worker, []).append((rec.time, backlog))
    return [
        CounterTrack.from_samples(f"backlog {worker}", points, unit="s")
        for worker, points in sorted(series.items())
    ]


def enriched_chrome_trace(
    tracer: Tracer,
    sampler=None,
    decisions: Optional[DecisionLog] = None,
    time_unit_us: float = 1e6,
) -> dict:
    """Perfetto document with power and backlog counter tracks attached."""
    counters: list[CounterTrack] = []
    if sampler is not None:
        counters.extend(sampler.counter_tracks())
    if decisions is not None:
        counters.extend(backlog_counter_tracks(decisions))
    return to_chrome_trace(tracer, time_unit_us=time_unit_us, counters=counters)


def write_enriched_chrome_trace(
    path: str,
    tracer: Tracer,
    sampler=None,
    decisions: Optional[DecisionLog] = None,
) -> None:
    with open(path, "w") as fh:
        json.dump(enriched_chrome_trace(tracer, sampler, decisions), fh)
