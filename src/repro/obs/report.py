"""``repro report``: summarize an instrumented run directory.

Reads the artefacts written by :func:`repro.obs.capture.run_traced` and
prints the audit views the paper's claims hinge on:

- **per-device energy shares** — the Fig. 5 breakdown for this run;
- **task distribution by GPU cap state** — how many tasks each GPU received
  given its H/B/L state, the observable form of "StarPU automatically sends
  fewer tasks to slower (capped) GPUs";
- **load-imbalance-vs-cap check** — asserts that more-capped GPUs received
  at most as many tasks as less-capped ones (H ≥ B ≥ L);
- **idle-gap detector** — per-worker scheduling holes larger than a
  threshold, the first thing to look at when a config underperforms;
- **decision-log audit** — replays every logged placement argmin and counts
  disagreements (zero means the log fully explains the schedule);
- **fault section** — for chaos run directories (``repro chaos --outdir``),
  injected-fault and recovery-action counts, degradation vs the fault-free
  baseline, the resilience audit verdict and the recovery annotations;
- **anomaly section** — watchdog anomalies found in a streamed
  ``events.jsonl`` (see :mod:`repro.obs.stream`).

Streamed run directories are first-class: a run that is still executing —
or was killed mid-flight — has a manifest and a (possibly torn) event
stream but no ``result.json`` yet.  The report renders what the stream
proves happened instead of crashing, and counts any torn lines it skipped.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.core.reporting import format_table
from repro.obs.decisions import DecisionLog
from repro.obs.exporters import (
    CHAOS_FILENAME,
    DECISIONS_FILENAME,
    EVENTS_FILENAME,
    FAULTS_FILENAME,
    RESULT_FILENAME,
    read_events_jsonl_tolerant,
)
from repro.obs.manifest import RunManifest
from repro.obs.stream import OnlineAggregator

#: Order of cap states from least to most capped.
STATE_SEVERITY = {"H": 0, "B": 1, "L": 2}


@dataclass
class IdleGap:
    worker: str
    start: float
    duration: float


@dataclass
class RunReport:
    """Parsed artefacts plus derived analysis for one run directory."""

    rundir: Path
    manifest: RunManifest
    #: ``None`` for a partial (in-flight or killed) streamed run.
    result: Optional[dict]
    decisions: Optional[DecisionLog] = None
    events: list[dict] = field(default_factory=list)
    faults: list[dict] = field(default_factory=list)
    chaos: Optional[dict] = None
    #: Torn/truncated JSONL lines skipped while loading the event stream.
    n_torn: int = 0

    # ------------------------------------------------------------- loading

    @classmethod
    def load(cls, rundir: str) -> "RunReport":
        path = Path(rundir)
        manifest = RunManifest.read(rundir)
        # A streamed run writes the manifest first and result.json last, so
        # a missing result means the run is still executing or was killed.
        result = None
        if (path / RESULT_FILENAME).exists():
            result = json.loads((path / RESULT_FILENAME).read_text())
        decisions = None
        if (path / DECISIONS_FILENAME).exists():
            decisions = DecisionLog.read_jsonl(str(path / DECISIONS_FILENAME))
        events: list[dict] = []
        n_torn = 0
        if (path / EVENTS_FILENAME).exists():
            events, n_torn = read_events_jsonl_tolerant(
                str(path / EVENTS_FILENAME)
            )
        faults: list[dict] = []
        if (path / FAULTS_FILENAME).exists():
            faults, skipped = read_events_jsonl_tolerant(
                str(path / FAULTS_FILENAME)
            )
            n_torn += skipped
        chaos = None
        if (path / CHAOS_FILENAME).exists():
            chaos = json.loads((path / CHAOS_FILENAME).read_text())
        return cls(path, manifest, result, decisions, events, faults, chaos,
                   n_torn)

    @property
    def partial(self) -> bool:
        """True when the run has not (yet) produced a ``result.json``."""
        return self.result is None

    # ------------------------------------------------------------ analysis

    def energy_shares(self) -> list[tuple[str, float, float]]:
        """(device, joules, share%) rows, devices in node order."""
        energies = self.result["energies_j"]
        total = sum(energies.values()) or 1.0
        return [(dev, j, 100.0 * j / total) for dev, j in energies.items()]

    def gpu_task_rows(self) -> list[tuple[str, str, str, float, int, float]]:
        """(worker, device, state, cap_W, tasks, share%) per GPU worker."""
        states = self.manifest.gpu_states
        caps = {f"gpu{i}": w for i, w in enumerate(self.manifest.gpu_caps_w)}
        worker_tasks = self.result["worker_tasks"]
        n_tasks = self.result["n_tasks"] or 1
        rows = []
        for worker, count in worker_tasks.items():
            if not worker.startswith("gpu"):
                continue
            device = f"gpu{worker.removeprefix('gpu-w')}"
            rows.append((
                worker, device, states.get(device, "?"),
                caps.get(device, 0.0), count, 100.0 * count / n_tasks,
            ))
        return rows

    def state_distribution(self) -> list[tuple[str, int, int, float]]:
        """(state, n_gpus, tasks, tasks_per_gpu) aggregated per cap state,
        plus a final row aggregating the CPU workers."""
        per_state: dict[str, list[int]] = {}
        for _, _, state, _, count, _ in self.gpu_task_rows():
            per_state.setdefault(state, []).append(count)
        rows = [
            (state, len(counts), sum(counts), sum(counts) / len(counts))
            for state, counts in sorted(
                per_state.items(), key=lambda kv: STATE_SEVERITY.get(kv[0], 9)
            )
        ]
        cpu_counts = [
            count for worker, count in self.result["worker_tasks"].items()
            if worker.startswith("cpu")
        ]
        if cpu_counts:
            rows.append(
                ("cpu", len(cpu_counts), sum(cpu_counts),
                 sum(cpu_counts) / len(cpu_counts))
            )
        return rows

    def imbalance_check(self) -> tuple[bool, list[str]]:
        """Do more-capped GPUs receive at most as many tasks as less-capped
        ones?  This is the paper's fewer-tasks-to-capped-GPUs mechanism."""
        gpu_rows = {state: per_gpu for state, _, _, per_gpu
                    in self.state_distribution() if state in STATE_SEVERITY}
        ordered = sorted(gpu_rows, key=STATE_SEVERITY.__getitem__)
        notes: list[str] = []
        ok = True
        for faster, slower in zip(ordered, ordered[1:]):
            if gpu_rows[slower] <= gpu_rows[faster]:
                notes.append(
                    f"OK: {slower}-capped GPUs averaged {gpu_rows[slower]:.1f} "
                    f"tasks vs {gpu_rows[faster]:.1f} on {faster} "
                    "(capped GPUs receive fewer tasks)"
                )
            else:
                ok = False
                notes.append(
                    f"VIOLATION: {slower}-capped GPUs averaged "
                    f"{gpu_rows[slower]:.1f} tasks vs {gpu_rows[faster]:.1f} "
                    f"on {faster}"
                )
        if len(ordered) < 2:
            notes.append(
                "single cap state; nothing to compare "
                f"(config {self.manifest.config})"
            )
        return ok, notes

    def idle_gaps(self, threshold_s: Optional[float] = None) -> list[IdleGap]:
        """Scheduling holes per worker, sorted longest first.

        A gap is idle time between consecutive task intervals on one worker
        within the run's busy window.  Default threshold: 2 % of the
        makespan (never below 10 µs).
        """
        busy: dict[str, list[tuple[float, float]]] = {}
        for event in self.events:
            if event.get("type") == "interval" and event.get("kind") == "task":
                busy.setdefault(event["resource"], []).append(
                    (event["t"], event["end"])
                )
        if not busy:
            return []
        window_end = max(end for spans in busy.values() for _, end in spans)
        window_start = min(t for spans in busy.values() for t, _ in spans)
        if threshold_s is None:
            threshold_s = max(1e-5, 0.02 * (window_end - window_start))
        gaps: list[IdleGap] = []
        for worker, spans in busy.items():
            spans.sort()
            cursor = window_start
            for start, end in spans:
                if start - cursor > threshold_s:
                    gaps.append(IdleGap(worker, cursor, start - cursor))
                cursor = max(cursor, end)
            if window_end - cursor > threshold_s:
                gaps.append(IdleGap(worker, cursor, window_end - cursor))
        gaps.sort(key=lambda g: -g.duration)
        return gaps

    def decision_audit(self) -> dict:
        """Replay every decision; summarize consistency and coverage."""
        if self.decisions is None or len(self.decisions) == 0:
            return {"n_decisions": 0, "n_mismatches": 0, "covers_all_tasks": False}
        mismatches = self.decisions.verify_replay()
        mean_classes = sum(
            len(r.candidates) for r in self.decisions
        ) / len(self.decisions)
        # Distinct tids, not record count: a task aborted by fault recovery
        # is decided again on resubmission, so retries add records without
        # adding coverage.
        return {
            "n_decisions": len(self.decisions),
            "n_mismatches": len(mismatches),
            "mismatched_labels": [r.label for r in mismatches[:10]],
            "mean_candidate_classes": mean_classes,
            "covers_all_tasks": (
                self.result is not None
                and len({r.tid for r in self.decisions})
                == self.result["n_tasks"]
            ),
            "by_worker": self.decisions.by_worker(),
        }

    def fault_summary(self) -> dict:
        """Injected-fault and recovery-action counts from ``faults.jsonl``."""
        # Lazy import: repro.faults pulls in the runtime; the report must
        # stay loadable for fault-free run directories regardless.
        from repro.faults.plan import FAULT_KINDS

        injected: dict[str, int] = {}
        actions: dict[str, int] = {}
        for rec in self.faults:
            kind = rec.get("kind", "?")
            bucket = (
                injected
                if kind in FAULT_KINDS or kind.endswith("-clear")
                else actions
            )
            bucket[kind] = bucket.get(kind, 0) + 1
        return {"injected": injected, "actions": actions}

    def anomalies(self) -> list[dict]:
        """Watchdog anomaly events found in the loaded stream, time-ordered."""
        found = [e for e in self.events if e.get("type") == "anomaly"]
        found.sort(key=lambda e: e.get("t", 0.0))
        return found

    def stream_summary(self) -> dict:
        """Replay the loaded events through the online aggregator.

        This is how a partial run is summarized: the aggregator sees exactly
        what a live ``repro watch`` would have seen, so the numbers agree.
        """
        agg = OnlineAggregator()
        for event in self.events:
            agg(event)
        return agg.snapshot()

    # ----------------------------------------------------------- rendering

    def header(self) -> str:
        m = self.manifest
        caps = ", ".join(
            f"{dev}={state}@{cap:.0f}W"
            for (dev, state), cap in zip(m.gpu_states.items(), m.gpu_caps_w)
        )
        lines = [
            f"run: {self.rundir}",
            f"platform {m.platform}  op {m.op}-{m.precision} N={m.n} NB={m.nb}"
            f"  scheduler {m.scheduler}  seed {m.seed}  scale {m.scale}",
            f"config {m.config}  ({caps})  version {m.version or 'unknown'}",
        ]
        if self.result is not None:
            lines.append(
                f"makespan {self.result['makespan_s']:.4f}s"
                f"  {self.result['gflops']:.1f} Gflop/s"
                f"  {self.result['total_energy_j']:.1f} J"
                f"  {self.result['gflops_per_watt']:.2f} Gflop/s/W"
            )
        else:
            lines.append(
                "[stream] partial run — no result.json "
                "(run still active or killed)"
            )
        return "\n".join(lines) + "\n"

    def render(self, max_gaps: int = 8) -> str:
        if self.partial:
            return self._render_partial(max_gaps=max_gaps)
        parts = [self.header(), "\n"]
        parts.append(format_table(
            ["device", "energy_J", "share_pct"],
            [(d, round(j, 1), round(s, 1)) for d, j, s in self.energy_shares()],
            title="[energy] per-device energy shares",
        ))
        parts.append("\n")
        parts.append(format_table(
            ["worker", "device", "cap_state", "cap_W", "tasks", "share_pct"],
            [(w, d, st, round(c, 0), n, round(s, 1))
             for w, d, st, c, n, s in self.gpu_task_rows()],
            title="[tasks] GPU task distribution",
        ))
        parts.append(format_table(
            ["cap_state", "n_workers", "tasks", "tasks_per_worker"],
            [(st, n, total, round(per, 1))
             for st, n, total, per in self.state_distribution()],
            title="[tasks] distribution by cap state",
        ))
        ok, notes = self.imbalance_check()
        parts.append("[check] load imbalance vs cap\n")
        for note in notes:
            parts.append(f"  {note}\n")
        parts.append("\n")
        gaps = self.idle_gaps()
        if gaps:
            parts.append(format_table(
                ["worker", "gap_start_s", "gap_s"],
                [(g.worker, round(g.start, 4), round(g.duration, 4))
                 for g in gaps[:max_gaps]],
                title=f"[idle] {len(gaps)} idle gaps above threshold"
                      f" (top {min(max_gaps, len(gaps))})",
            ))
        else:
            parts.append("[idle] no idle gaps above threshold\n")
        if self.manifest.cache:
            c = self.manifest.cache
            fp = str(c.get("fingerprint", ""))[:12]
            parts.append(
                f"[cache] {c.get('hits', 0)} hits, {c.get('misses', 0)} misses"
                f" (dir {c.get('dir', '?')}, code {fp or 'unknown'})\n"
            )
        audit = self.decision_audit()
        parts.append("[decisions] ")
        if audit["n_decisions"] == 0:
            parts.append("no decision log in this run directory\n")
        else:
            parts.append(
                f"{audit['n_decisions']} decisions, "
                f"{audit['n_mismatches']} replay mismatches, "
                f"{audit['mean_candidate_classes']:.1f} candidate classes/decision, "
                f"covers all tasks: {audit['covers_all_tasks']}\n"
            )
        if self.faults or self.chaos is not None:
            parts.append(self._render_faults())
        parts.append(self._render_anomalies())
        parts.append(self._torn_warning())
        return "".join(parts)

    def _render_partial(self, max_gaps: int = 8) -> str:
        """Report for a run directory with no result.json yet: everything
        the streamed prefix of ``events.jsonl`` proves happened."""
        parts = [self.header(), "\n"]
        snap = self.stream_summary()
        expected = snap["n_tasks_expected"]
        progress = f"{snap['tasks_done']}"
        if expected:
            progress += f"/{expected} ({100.0 * snap['tasks_done'] / expected:.0f}%)"
        parts.append(
            f"[stream] {snap['n_events']} events read"
            f"  sim clock {snap['t']:.4f}s\n"
            f"[stream] tasks completed: {progress}"
            f"  p50 {snap['task_p50_s'] * 1e3:.2f}ms"
            f"  p99 {snap['task_p99_s'] * 1e3:.2f}ms\n"
        )
        if snap["power_w"]:
            devices = "  ".join(
                f"{dev}={w:.0f}W" for dev, w in sorted(snap["power_w"].items())
            )
            parts.append(
                f"[stream] last power sample: total {snap['total_power_w']:.0f}W"
                f"  ({devices})\n"
            )
        if snap["cache_lookups"]:
            rate = snap["cache_hit_rate"]
            parts.append(
                f"[stream] cache: {snap['cache_lookups']} lookups, "
                f"hit rate {rate:.0%} (rolling window)\n"
            )
        if snap["n_faults"]:
            parts.append(f"[stream] faults observed: {snap['n_faults']}\n")
        parts.append("\n")
        gaps = self.idle_gaps()
        if gaps:
            parts.append(format_table(
                ["worker", "gap_start_s", "gap_s"],
                [(g.worker, round(g.start, 4), round(g.duration, 4))
                 for g in gaps[:max_gaps]],
                title=f"[idle] {len(gaps)} idle gaps above threshold"
                      f" (top {min(max_gaps, len(gaps))})",
            ))
        parts.append(self._render_anomalies())
        parts.append(self._torn_warning())
        return "".join(parts)

    def _render_anomalies(self, limit: int = 12) -> str:
        """The ``[anomalies]`` feed: watchdog events from the stream."""
        found = self.anomalies()
        if not found:
            return ""
        parts = [f"[anomalies] {len(found)} watchdog anomalies\n"]
        for event in found[:limit]:
            parts.append(
                f"  {event.get('t', 0.0):.4f}s  {event.get('rule', '?')}"
                f"  {event.get('target', '?')}: {event.get('detail', '')}\n"
            )
        if len(found) > limit:
            parts.append(f"  ... and {len(found) - limit} more\n")
        return "".join(parts)

    def _torn_warning(self) -> str:
        if not self.n_torn:
            return ""
        return (
            f"[stream] skipped {self.n_torn} torn line(s) "
            "(truncated mid-write; expected for killed or in-flight runs)\n"
        )

    def _render_faults(self) -> str:
        """The ``[faults]`` section for chaos run directories."""
        parts: list[str] = []
        summary = self.fault_summary()
        injected = ", ".join(
            f"{kind} x{n}" for kind, n in sorted(summary["injected"].items())
        ) or "none"
        actions = ", ".join(
            f"{kind} x{n}" for kind, n in sorted(summary["actions"].items())
        ) or "none"
        parts.append(f"[faults] injected: {injected}\n")
        parts.append(f"[faults] recovery: {actions}\n")
        if self.chaos is not None:
            deg = self.chaos["degradation"]
            parts.append(
                f"[faults] degradation vs fault-free baseline: "
                f"makespan {deg['makespan_pct']:+.2f} %, "
                f"energy {deg['energy_pct']:+.2f} %\n"
            )
            ok = all(
                bool(v) if isinstance(v, bool) else v == 0
                for v in self.chaos["audit"].values()
            )
            parts.append(f"[faults] resilience audit: {'PASS' if ok else 'FAIL'}\n")
        if self.decisions is not None:
            for ann in self.decisions.annotations:
                parts.append(f"  {ann['t']:.4f}s  {ann['text']}\n")
        return "".join(parts)


def render_report(rundir: str, max_gaps: int = 8) -> str:
    """Load a run directory and render the full text report."""
    return RunReport.load(rundir).render(max_gaps=max_gaps)
