"""Metrics primitives: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is the single sink for runtime instrumentation.
It is sampled on the *simulation* clock (pass the registry a clock so gauge
series carry simulated timestamps) and is deliberately dependency-free: the
runtime imports this module, never the other way around, so observability
can be bolted onto any layer without cycles.

Everything is opt-in.  A :class:`RuntimeSystem` built without a registry
keeps its hot paths free of metric calls; when a registry is attached the
cost is one ``dict`` lookup plus an integer/float update per event.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Iterable, Optional, Sequence

LabelItems = tuple[tuple[str, str], ...]


def _label_key(labels: Optional[dict]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape per the Prometheus text exposition format: inside quoted
    label values, backslash, double-quote and newline must be escaped."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_str(items: LabelItems) -> str:
    if not items:
        return ""
    return (
        "{"
        + ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in items)
        + "}"
    )


class Counter:
    """A monotonically increasing value (events, bytes, cache hits)."""

    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help: str = "", labels: LabelItems = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value; optionally keeps its full timestamped series."""

    __slots__ = ("name", "help", "labels", "value", "series", "_track")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: LabelItems = (),
        track_series: bool = False,
    ) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0.0
        self._track = track_series
        self.series: list[tuple[float, float]] = []

    def set(self, value: float, t: Optional[float] = None) -> None:
        self.value = float(value)
        if self._track and t is not None:
            self.series.append((t, self.value))

    def add(self, delta: float, t: Optional[float] = None) -> None:
        self.set(self.value + delta, t)


class Histogram:
    """Fixed-bucket histogram (Prometheus semantics: cumulative ``le``)."""

    __slots__ = ("name", "help", "labels", "buckets", "counts", "count", "sum")

    #: Default buckets span sub-millisecond tile kernels up to whole runs.
    DEFAULT_BUCKETS = (
        1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: LabelItems = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.help = help
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +inf overflow bucket
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for bound, n in zip(self.buckets, self.counts):
            seen += n
            if seen >= target:
                return bound
        return float("inf")


MetricType = (Counter, Gauge, Histogram)


class MetricsRegistry:
    """Named metrics with labels, exportable as Prometheus text or records.

    ``clock`` is anything with a ``now`` attribute (the Simulator); gauges
    registered with ``track_series=True`` timestamp their samples with it.
    """

    def __init__(self, clock=None) -> None:
        self._clock = clock
        self._metrics: dict[tuple[str, LabelItems], object] = {}
        self._help: dict[str, str] = {}
        self._kind: dict[str, type] = {}

    @property
    def now(self) -> Optional[float]:
        return self._clock.now if self._clock is not None else None

    # --------------------------------------------------------------- factory

    def _get(self, cls, name: str, help: str, labels: Optional[dict], **kwargs):
        known = self._kind.get(name)
        if known is not None and known is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {known.__name__}"
            )
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, help or self._help.get(name, ""), key[1], **kwargs)
            self._metrics[key] = metric
            self._kind[name] = cls
            if help:
                self._help.setdefault(name, help)
        return metric

    def counter(self, name: str, help: str = "", labels: Optional[dict] = None) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[dict] = None,
        track_series: bool = False,
    ) -> Gauge:
        return self._get(Gauge, name, help, labels, track_series=track_series)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[dict] = None,
        buckets: Sequence[float] = Histogram.DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    # ---------------------------------------------------------------- access

    def __iter__(self) -> Iterable:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str, labels: Optional[dict] = None):
        return self._metrics.get((name, _label_key(labels)))

    def names(self) -> list[str]:
        return list(self._kind)

    # --------------------------------------------------------------- export

    def to_prometheus(self) -> str:
        """Prometheus text exposition format snapshot."""
        lines: list[str] = []
        by_name: dict[str, list] = {}
        for (name, _), metric in self._metrics.items():
            by_name.setdefault(name, []).append(metric)
        for name, metrics in by_name.items():
            kind = self._kind[name]
            type_str = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}[kind]
            help_str = self._help.get(name, "")
            if help_str:
                lines.append(f"# HELP {name} {help_str}")
            lines.append(f"# TYPE {name} {type_str}")
            for m in metrics:
                label_s = _label_str(m.labels)
                if kind is Histogram:
                    cumulative = 0
                    for bound, n in zip(m.buckets, m.counts):
                        cumulative += n
                        le = _label_str(m.labels + (("le", f"{bound:g}"),))
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    le = _label_str(m.labels + (("le", "+Inf"),))
                    lines.append(f"{name}_bucket{le} {m.count}")
                    lines.append(f"{name}_sum{label_s} {m.sum:g}")
                    lines.append(f"{name}_count{label_s} {m.count}")
                else:
                    lines.append(f"{name}{label_s} {m.value:g}")
        return "\n".join(lines) + "\n"

    def to_records(self) -> list[dict]:
        """Flatten every metric to a plain dict (JSONL friendly)."""
        records = []
        for (name, labels), m in self._metrics.items():
            rec: dict = {
                "metric": name,
                "type": self._kind[name].__name__.lower(),
                "labels": dict(labels),
            }
            if isinstance(m, Histogram):
                rec.update(
                    buckets=list(m.buckets),
                    counts=list(m.counts),
                    sum=m.sum,
                    count=m.count,
                )
            else:
                rec["value"] = m.value
                if isinstance(m, Gauge) and m.series:
                    rec["series"] = [[t, v] for t, v in m.series]
            records.append(rec)
        return records

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            for rec in self.to_records():
                fh.write(json.dumps(rec) + "\n")

    def publish_to(self, bus) -> None:
        """Publish one compact per-family summary event to a telemetry bus.

        Meant for run-boundary flushes, not per-event streaming: counters
        and gauges sum across label sets, histograms report count/sum.  The
        live stream gets a low-cardinality health snapshot without paying
        full-exposition cost mid-run.
        """
        families: dict[str, float] = {}
        counts: dict[str, int] = {}
        for (name, _), m in self._metrics.items():
            if isinstance(m, Histogram):
                counts[name] = counts.get(name, 0) + m.count
                families[name] = families.get(name, 0.0) + m.sum
            else:
                families[name] = families.get(name, 0.0) + m.value
        event: dict = {"type": "metrics", "families": families}
        if counts:
            event["counts"] = counts
        if self.now is not None:
            event["t"] = self.now
        bus.publish(event)
