"""Structured scheduler decision log.

Every placement decision of the dm-family schedulers can be captured as a
:class:`DecisionRecord`: the candidate equivalence classes with their cost
terms (duration estimate, transfer penalty, energy term), each member
worker's backlog at decision time, and the worker that won.  The record
holds everything needed to *replay* the argmin offline —
:meth:`DecisionRecord.replay_choice` recomputes the winner from the logged
terms with the same left-to-right float fold and first-wins tie-break the
scheduler uses, so a log can prove why every task went where it went.

The log is attached through ``Scheduler.decision_log`` (``None`` by
default); schedulers pay nothing when it is disabled.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Iterable, Optional


@dataclass(frozen=True)
class CandidateClass:
    """One placement equivalence class evaluated for a task.

    ``terms`` are the class's cost addends in fold order — ``terms[0]`` is
    the duration estimate, then (scheduler permitting) the transfer penalty
    and the energy term.  ``workers``/``indices``/``backlogs`` list the
    member workers in scan order with their queue backlog (seconds of
    estimated work) at decision time.  ``costs`` carries each member's
    folded cost exactly as the scheduler computed it; when empty it is
    reconstructed from ``backlogs`` and ``terms`` (bit-identical for the
    dm-family fast path, which uses the same left-to-right fold).
    """

    class_key: str
    workers: tuple[str, ...]
    indices: tuple[int, ...]
    backlogs: tuple[float, ...]
    terms: tuple[float, ...]
    costs: tuple[float, ...] = ()

    @property
    def estimate_s(self) -> float:
        return self.terms[0] if self.terms else 0.0

    @property
    def transfer_s(self) -> float:
        return self.terms[1] if len(self.terms) > 1 else 0.0

    @property
    def energy_term_s(self) -> float:
        return self.terms[2] if len(self.terms) > 2 else 0.0

    def cost_of(self, member: int) -> float:
        """One member's placement cost: logged verbatim, or re-folded."""
        if self.costs:
            return self.costs[member]
        cost = self.backlogs[member]
        for term in self.terms:
            cost += term
        return cost


@dataclass(frozen=True)
class DecisionRecord:
    """One scheduler placement decision."""

    tid: int
    label: str
    kind: str
    time: float
    chosen: str
    chosen_cost: float
    candidates: tuple[CandidateClass, ...]
    priority: int = 0

    def replay_choice(self) -> tuple[str, float]:
        """Recompute ``(worker, cost)`` from the logged candidates.

        Reproduces the scheduler's scan exactly: classes in logged order,
        members folded left-to-right, strict ``<`` improvement with a
        lower-worker-index tie-break.
        """
        best: Optional[str] = None
        best_cost = math.inf
        best_index = -1
        for cand in self.candidates:
            for member, (index, worker) in enumerate(zip(cand.indices, cand.workers)):
                cost = cand.cost_of(member)
                if cost < best_cost or (cost == best_cost and index < best_index):
                    best, best_cost, best_index = worker, cost, index
        if best is None:
            raise ValueError(f"decision for task {self.label!r} has no candidates")
        return best, best_cost

    def backlog_snapshot(self) -> dict[str, float]:
        """Per-worker backlog at decision time (union over candidates)."""
        out: dict[str, float] = {}
        for cand in self.candidates:
            out.update(zip(cand.workers, cand.backlogs))
        return out

    def to_record(self) -> dict:
        return {
            "tid": self.tid,
            "label": self.label,
            "kind": self.kind,
            "time": self.time,
            "priority": self.priority,
            "chosen": self.chosen,
            "chosen_cost": self.chosen_cost,
            "candidates": [
                {
                    "class": c.class_key,
                    "workers": list(c.workers),
                    "indices": list(c.indices),
                    "backlogs": list(c.backlogs),
                    "terms": list(c.terms),
                    "costs": list(c.costs),
                }
                for c in self.candidates
            ],
        }

    @classmethod
    def from_record(cls, rec: dict) -> "DecisionRecord":
        return cls(
            tid=rec["tid"],
            label=rec["label"],
            kind=rec["kind"],
            time=rec["time"],
            priority=rec.get("priority", 0),
            chosen=rec["chosen"],
            chosen_cost=rec["chosen_cost"],
            candidates=tuple(
                CandidateClass(
                    class_key=c["class"],
                    workers=tuple(c["workers"]),
                    indices=tuple(c["indices"]),
                    backlogs=tuple(c["backlogs"]),
                    terms=tuple(c["terms"]),
                    costs=tuple(c.get("costs", ())),
                )
                for c in rec["candidates"]
            ),
        )


class DecisionLog:
    """Append-only sink for placement decisions."""

    #: Minimum simulated seconds between streamed ``decision`` events.
    #: The live stream carries a *sampled* backlog signal — dashboards and
    #: the backlog-imbalance watchdog consume "latest backlog", so one
    #: snapshot per sampling window is as informative as one per task,
    #: while per-decision snapshots (a ~n_workers dict built and
    #: serialized per task, ~19 µs measured) were the single largest
    #: line in the streaming overhead budget.  Every decision is still
    #: recorded in full post-hoc in ``decisions.jsonl``.  Matches the
    #: watchdogs' evaluation cadence (``WatchdogConfig.eval_period_s``) —
    #: the only cadenced consumer of the backlog track — so sampling
    #: faster would add cost without adding information.
    STREAM_PERIOD_S = 0.02

    def __init__(self) -> None:
        self.records: list[DecisionRecord] = []
        #: Free-form timestamped notes interleaved with the decisions —
        #: fault recovery marks worker exclusions, re-admissions and
        #: recalibrations here so an audit can explain placement shifts.
        self.annotations: list[dict] = []
        #: Optional live-telemetry bus (:class:`repro.obs.stream.
        #: TelemetryBus`).  Appends publish a *compact* ``decision`` event —
        #: chosen worker, cost and the backlog snapshot — not the full
        #: candidate record, which stays post-hoc in ``decisions.jsonl`` —
        #: at most once per :data:`STREAM_PERIOD_S` of simulated time.
        self.bus: Any = None
        self.stream_period_s = self.STREAM_PERIOD_S
        self._last_stream_t = -math.inf

    def append(self, record: DecisionRecord) -> None:
        self.records.append(record)
        bus = self.bus
        if bus is not None:
            t = record.time
            if t - self._last_stream_t < self.stream_period_s:
                return
            self._last_stream_t = t
            bus.publish({
                "t": t,
                "type": "decision",
                "label": record.label,
                "kind": record.kind,
                "chosen": record.chosen,
                "cost": record.chosen_cost,
                "backlog": record.backlog_snapshot(),
            })

    def annotate(self, time: float, text: str, **data) -> None:
        """Attach a timestamped note (e.g. a fault-recovery action)."""
        self.annotations.append({"t": time, "text": text, **data})
        if self.bus is not None:
            self.bus.publish({"t": time, "type": "annotation", "text": text, **data})

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def by_worker(self) -> dict[str, int]:
        """Chosen-task counts per worker."""
        out: dict[str, int] = {}
        for rec in self.records:
            out[rec.chosen] = out.get(rec.chosen, 0) + 1
        return out

    def verify_replay(self) -> list[DecisionRecord]:
        """Records whose replayed argmin disagrees with the logged choice."""
        return [r for r in self.records if r.replay_choice()[0] != r.chosen]

    # ------------------------------------------------------------------- io

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            for rec in self.records:
                fh.write(json.dumps(rec.to_record()) + "\n")
            for ann in self.annotations:
                fh.write(json.dumps({"type": "annotation", **ann}) + "\n")

    @classmethod
    def read_jsonl(cls, path: str) -> "DecisionLog":
        log = cls()
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                rec = json.loads(line)
                if rec.get("type") == "annotation":
                    log.annotations.append(
                        {k: v for k, v in rec.items() if k != "type"}
                    )
                else:
                    log.append(DecisionRecord.from_record(rec))
        return log

    @classmethod
    def from_records(cls, records: Iterable[dict]) -> "DecisionLog":
        log = cls()
        for rec in records:
            log.append(DecisionRecord.from_record(rec))
        return log
