"""Blocking client for the cap-advisor service.

Used by the test suite, the CI smoke job and the load generator
(``benchmarks/perf/bench_service.py``).  Thin on purpose: one
``http.client.HTTPConnection`` per client, JSON in/out.  Not thread-safe —
give each load-generator thread its own client.

Transient failures are handled by a bounded :class:`RetryPolicy` with
jittered exponential backoff.  By default only connection-level failures
(server closed a keep-alive socket, reset, refused during a restart) are
retried; HTTP backpressure retries are opt-in via
``RetryPolicy(retry_statuses=(429,))`` — batch consumers want the client
to honor ``Retry-After`` and wait, interactive callers and the
backpressure tests want the raw 429.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional


@dataclass
class ServiceResponse:
    """One decoded HTTP exchange."""

    status: int
    doc: Any
    text: str
    headers: dict[str, str]

    def ok(self) -> bool:
        return 200 <= self.status < 300


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with full-jitter exponential backoff.

    ``max_attempts`` counts every try including the first; the delay before
    retry ``k`` is drawn uniformly from ``[0, min(cap, base * 2**(k-1))]``
    (full jitter — decorrelates synchronized clients hammering a recovering
    server).  A ``Retry-After`` header on a retryable status overrides the
    computed delay, clamped to ``retry_after_cap_s``.
    """

    max_attempts: int = 4
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    #: HTTP statuses to retry (connection failures are always retried).
    retry_statuses: tuple = ()
    #: Ceiling on an honored ``Retry-After`` (a misbehaving server must
    #: not park the client for minutes).
    retry_after_cap_s: float = 10.0

    def delay_s(self, attempt: int, rng: random.Random) -> float:
        bound = min(self.backoff_cap_s,
                    self.backoff_base_s * 2.0 ** (attempt - 1))
        return rng.uniform(0.0, bound)


#: Errors meaning the TCP connection is gone (server drain, restart, idle
#: close, crash); always retryable — the request never reached a handler
#: or the response was lost, and advise queries are idempotent.
_CONNECTION_ERRORS = (
    http.client.NotConnected,
    http.client.RemoteDisconnected,
    BrokenPipeError,
    ConnectionResetError,
    ConnectionRefusedError,
)


class AdvisorClient:
    """Talk to one :class:`~repro.service.server.AdvisorServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8750,
                 timeout_s: float = 60.0,
                 retry: Optional[RetryPolicy] = None,
                 rng: Optional[random.Random] = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retry = retry if retry is not None else RetryPolicy()
        self.n_retries = 0
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------ transport

    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None) -> ServiceResponse:
        policy = self.retry
        attempt = 0
        while True:
            attempt += 1
            try:
                response = self._request_once(method, path, body)
            except _CONNECTION_ERRORS:
                self.close()
                if attempt >= policy.max_attempts:
                    raise
                self._backoff(policy.delay_s(attempt, self._rng))
                continue
            if (response.status in policy.retry_statuses
                    and attempt < policy.max_attempts):
                self._backoff(self._retry_after(response)
                              if "retry-after" in response.headers
                              else policy.delay_s(attempt, self._rng))
                continue
            return response

    def _backoff(self, delay: float) -> None:
        self.n_retries += 1
        if delay > 0:
            self._sleep(delay)

    def _retry_after(self, response: ServiceResponse) -> float:
        try:
            hinted = float(response.headers["retry-after"])
        except ValueError:
            return self.retry.backoff_base_s
        return max(0.0, min(hinted, self.retry.retry_after_cap_s))

    def _request_once(self, method: str, path: str,
                      body: Optional[bytes]) -> ServiceResponse:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        headers = {"Content-Type": "application/json"} if body else {}
        self._conn.request(method, path, body=body, headers=headers)
        response = self._conn.getresponse()
        raw = response.read()
        if response.will_close:
            self.close()
        text = raw.decode("utf-8", errors="replace")
        doc: Any = None
        if "application/json" in (response.getheader("Content-Type") or ""):
            try:
                doc = json.loads(text)
            except ValueError:
                doc = None
        return ServiceResponse(
            status=response.status, doc=doc, text=text,
            headers={k.lower(): v for k, v in response.getheaders()},
        )

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "AdvisorClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------ endpoints

    def advise(self, doc: dict) -> ServiceResponse:
        """``POST /v1/advise`` with a request document."""
        return self._request(
            "POST", "/v1/advise", json.dumps(doc).encode("utf-8")
        )

    def healthz(self) -> ServiceResponse:
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> str:
        """The Prometheus text snapshot from ``GET /v1/metrics``."""
        return self._request("GET", "/v1/metrics").text

    def cache_stats(self) -> ServiceResponse:
        return self._request("GET", "/v1/cache/stats")


def advice_bytes(response: ServiceResponse) -> bytes:
    """The deterministic bytes of a response's advice document.

    Cold and warm answers to the same query must agree on these bytes
    exactly — this is the helper the byte-identity checks use.
    """
    return json.dumps(
        response.doc["advice"], sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def wait_ready(host: str, port: int, timeout_s: float = 30.0,
               interval_s: float = 0.05) -> bool:
    """Poll ``/v1/healthz`` until the server answers 200, or time out."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            with AdvisorClient(host, port, timeout_s=2.0) as client:
                if client.healthz().status == 200:
                    return True
        except (ConnectionError, socket.timeout, OSError):
            pass
        time.sleep(interval_s)
    return False
