"""Blocking client for the cap-advisor service.

Used by the test suite, the CI smoke job and the load generator
(``benchmarks/perf/bench_service.py``).  Thin on purpose: one
``http.client.HTTPConnection`` per client, transparent reconnect when the
server closed a keep-alive connection, JSON in/out.  Not thread-safe —
give each load-generator thread its own client.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from dataclasses import dataclass
from typing import Any, Optional


@dataclass
class ServiceResponse:
    """One decoded HTTP exchange."""

    status: int
    doc: Any
    text: str
    headers: dict[str, str]

    def ok(self) -> bool:
        return 200 <= self.status < 300


class AdvisorClient:
    """Talk to one :class:`~repro.service.server.AdvisorServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8750,
                 timeout_s: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------ transport

    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None) -> ServiceResponse:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        headers = {"Content-Type": "application/json"} if body else {}
        try:
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
        except (http.client.NotConnected, http.client.RemoteDisconnected,
                BrokenPipeError, ConnectionResetError):
            # The server dropped the keep-alive connection (drain, restart,
            # idle close); retry exactly once on a fresh connection.
            self.close()
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
            self._conn.request(method, path, body=body, headers=headers)
            response = self._conn.getresponse()
        raw = response.read()
        if response.will_close:
            self.close()
        text = raw.decode("utf-8", errors="replace")
        doc: Any = None
        if "application/json" in (response.getheader("Content-Type") or ""):
            try:
                doc = json.loads(text)
            except ValueError:
                doc = None
        return ServiceResponse(
            status=response.status, doc=doc, text=text,
            headers={k.lower(): v for k, v in response.getheaders()},
        )

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "AdvisorClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------ endpoints

    def advise(self, doc: dict) -> ServiceResponse:
        """``POST /v1/advise`` with a request document."""
        return self._request(
            "POST", "/v1/advise", json.dumps(doc).encode("utf-8")
        )

    def healthz(self) -> ServiceResponse:
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> str:
        """The Prometheus text snapshot from ``GET /v1/metrics``."""
        return self._request("GET", "/v1/metrics").text

    def cache_stats(self) -> ServiceResponse:
        return self._request("GET", "/v1/cache/stats")


def advice_bytes(response: ServiceResponse) -> bytes:
    """The deterministic bytes of a response's advice document.

    Cold and warm answers to the same query must agree on these bytes
    exactly — this is the helper the byte-identity checks use.
    """
    return json.dumps(
        response.doc["advice"], sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def wait_ready(host: str, port: int, timeout_s: float = 30.0,
               interval_s: float = 0.05) -> bool:
    """Poll ``/v1/healthz`` until the server answers 200, or time out."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            with AdvisorClient(host, port, timeout_s=2.0) as client:
                if client.healthz().status == 200:
                    return True
        except (ConnectionError, socket.timeout, OSError):
            pass
        time.sleep(interval_s)
    return False
