"""Cap-advisor service: sweep-as-a-service over the shared experiment cache.

The paper's end product is a recommendation — *given this platform,
workload and energy budget, run cap configuration X* — and every layer
below this one already makes that recommendation cheap: the
content-addressed cache (:mod:`repro.cache`) replays a warm query in
milliseconds, and the parallel executor (:mod:`repro.experiments.parallel`)
makes cold ones fast.  This package turns those one-shot CLI drivers into a
long-running **asyncio HTTP service**:

- ``POST /v1/advise`` — platform, workload, scheduler, objective, energy
  budget in; recommended :class:`~repro.core.capconfig.CapConfig` with
  predicted makespan/energy and provenance out.
- ``GET /v1/healthz`` — liveness (503 while draining).
- ``GET /v1/metrics`` — Prometheus text (reuses
  :class:`repro.obs.metrics.MetricsRegistry`).
- ``GET /v1/cache/stats`` — the shared store's entry/byte counts plus the
  server's hit/miss/coalescing totals.

Layering (stdlib only — no aiohttp, no http.server):

- :mod:`repro.service.protocol` — request validation and the canonical
  advise document (the service boundary where ``-0.0`` budgets are
  canonicalised and non-finite weights become a 400, not a 500).
- :mod:`repro.service.advisor` — the pure advice computation: evaluate the
  candidate ladder through :class:`~repro.cache.ExperimentCache`, score by
  objective, pick the winner.  A :class:`~repro.service.advisor.ProbeCache`
  answers *warm* queries entirely from disk without ever simulating.
- :mod:`repro.service.coalesce` — single-flight map: N identical in-flight
  requests share one computation; failures propagate to every waiter and
  are never cached.
- :mod:`repro.service.http` — minimal HTTP/1.1 parser/serialiser over
  asyncio streams (keep-alive, Content-Length bodies only).
- :mod:`repro.service.server` — :class:`AdvisorServer`: warm queries
  resolve on a small thread pool, cold ones are coalesced and dispatched to
  a sharded ``parallel_starmap``-backed worker pool with bounded queue
  depth (429 backpressure), per-request timeouts (504) and graceful drain
  on SIGTERM.
- :mod:`repro.service.client` — the blocking client used by the tests, the
  CI smoke job and the load generator.

See ``docs/service.md`` for schemas and operational notes.
"""

from repro.service.advisor import ColdMiss, ProbeCache, advise_key, evaluate
from repro.service.client import AdvisorClient, wait_ready
from repro.service.coalesce import Coalescer
from repro.service.protocol import AdviseRequest, ValidationError, parse_advise_request
from repro.service.server import AdvisorServer

__all__ = [
    "AdviseRequest",
    "AdvisorClient",
    "AdvisorServer",
    "Coalescer",
    "ColdMiss",
    "ProbeCache",
    "ValidationError",
    "advise_key",
    "evaluate",
    "parse_advise_request",
    "wait_ready",
]
