"""The cap-advisor server: warm from cache, cold through a coalesced pool.

Request flow for ``POST /v1/advise``::

    parse/validate (400 on bad input)
      -> warm probe on the probe thread pool (all cache hits -> answer now)
      -> coalesce on the canonical advise key
           join an in-flight computation        (no new work)
           or become leader:
               queue full -> 429 + Retry-After  (backpressure)
               else dispatch to a worker shard  (parallel_starmap inside)
      -> await with per-request timeout         (504; computation continues
                                                 and still fills the cache)

Graceful drain: SIGTERM (or :meth:`AdvisorServer.request_stop`) stops the
listener, lets in-flight requests finish up to ``drain_timeout_s``, closes
idle keep-alive connections, shuts the pools down and returns — the CLI
then exits 0 with no orphaned workers.

Everything observable lands in a :class:`repro.obs.metrics.MetricsRegistry`
exposed as Prometheus text at ``GET /v1/metrics``.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Optional

from repro.cache import CacheStore, code_fingerprint
from repro.obs.metrics import MetricsRegistry
from repro.service import http
from repro.service.advisor import advise_key, compute_advice, probe_advice
from repro.service.coalesce import Coalescer
from repro.service.protocol import ValidationError, parse_advise_request

#: Latency buckets: warm answers live in the 1-50 ms decades, cold ones in
#: the 0.1-60 s decades.
_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


def _json_bytes(doc: Any) -> bytes:
    """Deterministic response encoding (sorted keys, no NaN)."""
    return (
        json.dumps(doc, sort_keys=True, separators=(",", ":"), allow_nan=False)
        + "\n"
    ).encode("utf-8")


class AdvisorServer:
    """Asyncio HTTP server answering cap-planning queries over a shared cache.

    ``shards`` worker threads run cold computations (each drives
    ``parallel_starmap`` with ``jobs`` processes); ``probe_threads`` answer
    warm queries from disk.  ``max_queue`` bounds *distinct* cold
    computations in flight — joins of an existing computation are free and
    never rejected.
    """

    def __init__(
        self,
        cache_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        shards: int = 2,
        jobs: int = 1,
        probe_threads: int = 4,
        max_queue: int = 16,
        request_timeout_s: float = 120.0,
        drain_timeout_s: float = 10.0,
        fingerprint: Optional[str] = None,
    ) -> None:
        if shards < 1:
            raise ValueError("need at least one worker shard")
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        self.cache_dir = str(cache_dir)
        self.store = CacheStore(cache_dir)
        self.host = host
        self.port = port
        self.shards = shards
        self.jobs = jobs
        self.probe_threads = probe_threads
        self.max_queue = max_queue
        self.request_timeout_s = request_timeout_s
        self.drain_timeout_s = drain_timeout_s
        self.fingerprint = fingerprint if fingerprint is not None else code_fingerprint()

        self.registry = MetricsRegistry()
        self.coalescer = Coalescer()
        #: Cold computations dispatched and not yet finished (queue depth).
        self.pending = 0
        self.draining = False
        self.started_at = time.time()

        #: Injection points for tests (slow/failing computations without
        #: monkeypatching module globals under a running event loop).
        self._compute: Callable = compute_advice
        self._probe: Callable = probe_advice

        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._conns: dict[asyncio.Task, dict] = {}
        self._compute_pool: Optional[ThreadPoolExecutor] = None
        self._probe_pool: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Bind the listener and spin up the pools (no signal handling)."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._compute_pool = ThreadPoolExecutor(
            max_workers=self.shards, thread_name_prefix="advise-shard"
        )
        self._probe_pool = ThreadPoolExecutor(
            max_workers=self.probe_threads, thread_name_prefix="advise-probe"
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=http.MAX_HEADER_BYTES,
        )
        sock = self._server.sockets[0]
        self.port = sock.getsockname()[1]
        self.registry.gauge(
            "repro_service_up", "1 while the advisor accepts requests."
        ).set(1)

    async def run(
        self,
        install_signals: bool = True,
        ready: Optional[Callable[["AdvisorServer"], None]] = None,
    ) -> None:
        """Serve until stopped, then drain.  The CLI entry point."""
        await self.start()
        if install_signals:
            for sig in (signal.SIGTERM, signal.SIGINT):
                self._loop.add_signal_handler(sig, self.request_stop)
        if ready is not None:
            ready(self)
        try:
            await self._stop_event.wait()
        finally:
            if install_signals:
                for sig in (signal.SIGTERM, signal.SIGINT):
                    self._loop.remove_signal_handler(sig)
            await self.drain()

    def request_stop(self) -> None:
        """Begin a graceful shutdown (idempotent; loop-thread only)."""
        self.draining = True
        self.registry.gauge("repro_service_up").set(0)
        if self._stop_event is not None:
            self._stop_event.set()

    def stop_threadsafe(self) -> None:
        """Request a graceful shutdown from any thread (used by tests)."""
        if self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self.request_stop)
            except RuntimeError:
                pass  # loop already closed: the server is stopped

    async def drain(self) -> None:
        """Stop accepting, finish in-flight work, shut the pools down."""
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Nudge idle keep-alive connections: closing the transport makes
        # their pending read return EOF, so their tasks exit cleanly.  Busy
        # connections finish their current response first.
        for state in self._conns.values():
            if not state["busy"]:
                state["writer"].close()
        if self._conns:
            await asyncio.wait(
                set(self._conns), timeout=self.drain_timeout_s
            )
        for task, state in list(self._conns.items()):
            state["writer"].close()
            task.cancel()
        if self._conns:
            await asyncio.gather(*self._conns, return_exceptions=True)
        self._conns.clear()
        for pool in (self._compute_pool, self._probe_pool):
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
        self._compute_pool = self._probe_pool = None

    # ---------------------------------------------------------- connections

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        state = {"writer": writer, "busy": False}
        self._conns[task] = state
        try:
            await self._connection_loop(reader, writer, state)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._conns.pop(task, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass

    async def _connection_loop(self, reader, writer, state) -> None:
        while not self.draining:
            try:
                request = await http.read_request(reader)
            except http.BadRequest as exc:
                await self._write(
                    writer,
                    http.render_response(
                        exc.status, _json_bytes({"error": str(exc)}), close=True
                    ),
                )
                return
            if request is None:
                return
            state["busy"] = True
            try:
                status, body, extra = await self._dispatch(request)
                close = request.close or self.draining
                await self._write(
                    writer,
                    http.render_response(
                        status, body, close=close, extra_headers=extra,
                        content_type=(
                            "text/plain; version=0.0.4"
                            if request.path == "/v1/metrics" else "application/json"
                        ),
                    ),
                )
            finally:
                state["busy"] = False
            if request.close:
                return

    async def _write(self, writer: asyncio.StreamWriter, payload: bytes) -> None:
        writer.write(payload)
        await writer.drain()

    # ------------------------------------------------------------- dispatch

    async def _dispatch(self, request: http.Request):
        """Route one request; returns ``(status, body, extra_headers)``."""
        t0 = time.perf_counter()
        route, handler = self._route(request)
        try:
            status, body, extra = await handler(request)
        except Exception as exc:  # the connection must survive handler bugs
            self.registry.counter(
                "repro_service_errors_total", "Unhandled handler exceptions."
            ).inc()
            status, body, extra = 500, _json_bytes({"error": repr(exc)}), None
        self.registry.counter(
            "repro_service_requests_total", "HTTP requests served.",
            labels={"route": route, "status": str(status)},
        ).inc()
        self.registry.histogram(
            "repro_service_request_seconds", "Wall time per request.",
            labels={"route": route}, buckets=_LATENCY_BUCKETS,
        ).observe(time.perf_counter() - t0)
        return status, body, extra

    def _route(self, request: http.Request):
        path, method = request.path, request.method
        if path == "/v1/advise":
            if method != "POST":
                return "advise", self._method_not_allowed("POST")
            return "advise", self._advise
        if path == "/v1/healthz":
            if method != "GET":
                return "healthz", self._method_not_allowed("GET")
            return "healthz", self._healthz
        if path == "/v1/metrics":
            if method != "GET":
                return "metrics", self._method_not_allowed("GET")
            return "metrics", self._metrics
        if path == "/v1/cache/stats":
            if method != "GET":
                return "cache_stats", self._method_not_allowed("GET")
            return "cache_stats", self._cache_stats
        return "unknown", self._not_found

    def _method_not_allowed(self, allow: str):
        async def handler(request: http.Request):
            return 405, _json_bytes({"error": f"use {allow}"}), {"Allow": allow}
        return handler

    async def _not_found(self, request: http.Request):
        return 404, _json_bytes({
            "error": f"no route {request.path!r}",
            "routes": ["/v1/advise", "/v1/healthz", "/v1/metrics",
                       "/v1/cache/stats"],
        }), None

    # ------------------------------------------------------------ endpoints

    async def _healthz(self, request: http.Request):
        status = 503 if self.draining else 200
        return status, _json_bytes({
            "status": "draining" if self.draining else "ok",
            "pid": os.getpid(),
            "uptime_s": time.time() - self.started_at,
            "pending_computations": self.pending,
            "inflight_keys": len(self.coalescer),
            "cache_dir": self.cache_dir,
            "fingerprint": self.fingerprint[:12],
        }), None

    async def _metrics(self, request: http.Request):
        return 200, self.registry.to_prometheus().encode("utf-8"), None

    async def _cache_stats(self, request: http.Request):
        stats = await self._loop.run_in_executor(
            self._probe_pool, self.store.stats
        )
        return 200, _json_bytes({
            "store": stats,
            "served": {
                "warm_hits": self._counter_value("repro_service_advise_warm_total"),
                "computations": self._counter_value(
                    "repro_service_advise_computations_total"),
                "coalesced": self._counter_value(
                    "repro_service_advise_coalesced_total"),
            },
            "coalescer": self.coalescer.stats(),
        }), None

    def _counter_value(self, name: str) -> float:
        metric = self.registry.get(name)
        return metric.value if metric is not None else 0.0

    # --------------------------------------------------------------- advise

    async def _advise(self, request: http.Request):
        try:
            doc = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            return 400, _json_bytes({"error": f"invalid JSON body: {exc}"}), None
        try:
            advise = parse_advise_request(doc)
        except ValidationError as exc:
            self.registry.counter(
                "repro_service_advise_rejected_total",
                "Advise requests rejected with 400.",
            ).inc()
            return 400, _json_bytes({"error": str(exc)}), None

        key = advise_key(advise, self.fingerprint)
        t0 = time.perf_counter()

        # Warm path: all underlying entries already on disk.
        probed = await self._loop.run_in_executor(
            self._probe_pool, self._probe, advise, self.cache_dir,
            self.fingerprint,
        )
        if probed is not None:
            advice, counts = probed
            self._count_cache(counts)
            self.registry.counter(
                "repro_service_advise_warm_total",
                "Advise queries answered from the cache alone.",
            ).inc()
            return 200, _json_bytes({
                "advice": advice,
                "served": self._served(
                    t0, cache_hit=True, coalesced=False, computed=False,
                    cache=counts, key=key,
                ),
            }), None

        # Cold path: coalesce, then dispatch or join.  Joining an existing
        # computation adds no work and is never rejected; only a request
        # that would *start* a computation feels the queue bound.
        if self.coalescer.peek(key) is None and self.pending >= self.max_queue:
            self.registry.counter(
                "repro_service_backpressure_total",
                "Advise queries rejected with 429 (queue full).",
            ).inc()
            return 429, _json_bytes({
                "error": f"computation queue full "
                         f"({self.pending}/{self.max_queue}); retry later",
            }), {"Retry-After": "1"}
        fut, leader = self.coalescer.lease(key)
        if leader:
            self.pending += 1
            self.registry.counter(
                "repro_service_advise_computations_total",
                "Underlying advise computations started (post-coalescing).",
            ).inc()
            self.registry.gauge(
                "repro_service_queue_depth",
                "Cold computations dispatched and not yet finished.",
            ).set(self.pending)
            self._loop.create_task(self._run_computation(key, fut, advise))
        else:
            self.registry.counter(
                "repro_service_advise_coalesced_total",
                "Advise queries that joined an in-flight computation.",
            ).inc()

        try:
            advice, counts = await asyncio.wait_for(
                asyncio.shield(fut), timeout=self.request_timeout_s
            )
        except asyncio.TimeoutError:
            self.registry.counter(
                "repro_service_timeouts_total",
                "Advise queries that hit the per-request timeout.",
            ).inc()
            return 504, _json_bytes({
                "error": f"computation exceeded {self.request_timeout_s}s; "
                         "it continues in the background and will be cached",
            }), None
        except Exception as exc:
            self.registry.counter(
                "repro_service_compute_errors_total",
                "Advise computations that raised.",
            ).inc()
            return 500, _json_bytes({"error": repr(exc)}), None

        if leader:
            self._count_cache(counts)
        return 200, _json_bytes({
            "advice": advice,
            "served": self._served(
                t0, cache_hit=False, coalesced=not leader, computed=leader,
                cache=counts if leader else None, key=key,
            ),
        }), None

    async def _run_computation(self, key: str, fut: asyncio.Future, advise) -> None:
        """Leader-side: run the cold computation on a shard and resolve."""
        try:
            result = await self._loop.run_in_executor(
                self._compute_pool, self._compute, advise, self.cache_dir,
                self.fingerprint, self.jobs,
            )
        except Exception as exc:
            self.coalescer.resolve(key, fut, exc=exc)
        else:
            self.coalescer.resolve(key, fut, result=result)
        finally:
            self.pending -= 1
            self.registry.gauge("repro_service_queue_depth").set(self.pending)

    def _served(self, t0, cache_hit, coalesced, computed, cache, key) -> dict:
        return {
            "cache_hit": cache_hit,
            "coalesced": coalesced,
            "computed": computed,
            "cache": cache,
            "key": key[:12],
            "elapsed_ms": (time.perf_counter() - t0) * 1000.0,
        }

    def _count_cache(self, counts: dict) -> None:
        self.registry.counter(
            "repro_service_cache_hits_total",
            "Underlying experiment-cache hits across all queries.",
        ).inc(counts.get("hits", 0))
        self.registry.counter(
            "repro_service_cache_misses_total",
            "Underlying experiment-cache misses across all queries.",
        ).inc(counts.get("misses", 0))


def serve_url(host: str, port: int) -> str:
    """Printable base URL (IPv6 hosts get brackets)."""
    if ":" in host and not host.startswith("["):
        return f"http://[{host}]:{port}"
    return f"http://{host}:{port}"


def pick_free_port(host: str = "127.0.0.1") -> int:
    """An ephemeral port for tests/benchmarks (race-tolerant best effort)."""
    with socket.socket() as s:
        s.bind((host, 0))
        return s.getsockname()[1]
