"""The advice computation: a pure function of (request, cache).

:func:`evaluate` runs the candidate cap-configuration ladder for the
requested workload through the same :func:`~repro.core.tradeoff.run_operation`
path every CLI driver uses, scores each candidate under the requested
objective, applies the energy budget, and returns a plain-JSON *advice
document*.  Because every underlying call is content-addressed cacheable,
the document is **byte-identical** whether it was computed cold or replayed
warm — the service relies on that for its cold/warm identity guarantee.

:class:`ProbeCache` is the warm path: an :class:`~repro.cache.ExperimentCache`
that refuses to simulate.  Any miss raises :class:`ColdMiss`, so
``evaluate(request, ProbeCache(...))`` either returns the full advice in a
few milliseconds of disk reads or proves the query needs real work.
"""

from __future__ import annotations

from typing import Optional

from repro.cache import ExperimentCache
from repro.cache.keys import run_key
from repro.core.capconfig import CapConfig
from repro.core.planner import OBJECTIVES
from repro.experiments.platforms import cap_states, config_list, operation_spec
from repro.hardware.catalog import platform_spec
from repro.service.protocol import AdviseRequest

#: Advice document schema; bump on layout changes.
ADVICE_SCHEMA = 1

#: Objectives where a larger score is better (the rest minimise).  Sourced
#: from the planner's registry so service and planner can never rank a
#: shared objective in opposite directions.
_MAXIMISE = {name for name, obj in OBJECTIVES.items() if obj.maximise}


class ColdMiss(Exception):
    """A probe hit a cache miss: the query cannot be answered warm."""

    def __init__(self, key: str) -> None:
        super().__init__(f"cache miss for {key[:12]}")
        self.key = key


class ProbeCache(ExperimentCache):
    """A cache that only replays: a miss aborts instead of simulating.

    Used by the server's warm path, which runs next to the event loop and
    must never pay simulation time.  Every call the advisor makes is
    cacheable by construction (catalog platforms, no tracer), so a probe
    either completes from disk or raises :class:`ColdMiss` on the first
    absent entry.
    """

    def load(self, key: str):
        hit, value = super().load(key)
        if not hit:
            raise ColdMiss(key)
        return hit, value

    def load_many(self, keys: list):
        loaded = super().load_many(keys)
        for key, (hit, _) in loaded.items():
            if not hit:
                raise ColdMiss(key)
        return loaded

    def save(self, key: str, value, label: str = "") -> None:
        # A probe never computes, so it has nothing to persist; seeing a
        # save means a miss slipped through — fail loudly in development.
        raise AssertionError("ProbeCache.save called: a probe computed a value")


def advise_key(request: AdviseRequest, fingerprint: str) -> str:
    """The coalescing/identity key of one advise query under one code tree."""
    return run_key(fingerprint, {"fn": "advise", **request.doc()})


def evaluate(request: AdviseRequest, cache: ExperimentCache, jobs: int = 1) -> dict:
    """Compute the advice document for one validated request.

    Deterministic: candidates are evaluated in a fixed order, scores use
    the exact cached float values, and ties break on config letters.  The
    all-H default is always evaluated (it anchors the ``vs_default`` deltas
    and the ``weighted`` normalisation) even when the caller's explicit
    candidate list omits it.
    """
    n_gpus = platform_spec(request.platform).n_gpus
    default = "H" * n_gpus
    candidates = (
        list(request.configs) if request.configs is not None
        else [c.letters for c in config_list(request.platform)]
    )
    run_list = candidates if default in candidates else [default] + candidates

    spec = operation_spec(request.platform, request.op, request.precision,
                          request.scale)
    states = cap_states(request.platform, request.op, request.precision,
                        request.scale, cache=cache)

    from repro.core.tradeoff import run_config_set

    metrics = run_config_set(
        request.platform, spec, [CapConfig(c) for c in run_list], states,
        scheduler=request.scheduler, seed=request.seed,
        cpu_caps=request.cpu_caps_dict() or None, jobs=jobs, cache=cache,
    )
    base = metrics[default]

    rows = []
    for letters in candidates:
        m = metrics[letters]
        score = _score(request, m, base)
        within = (
            None if request.energy_budget_j is None
            else bool(m.energy_j <= request.energy_budget_j)
        )
        rows.append({
            "config": letters,
            "makespan_s": m.makespan_s,
            "energy_j": m.energy_j,
            "gflops": m.gflops,
            "efficiency_gflops_per_w": m.efficiency,
            "gpu_task_fraction": m.gpu_task_fraction,
            "score": score,
            "within_budget": within,
        })

    feasible = [r for r in rows if r["within_budget"] in (True, None)]
    pool = feasible if feasible else rows
    best = min(pool, key=lambda r: (_rank(request.objective, r["score"]),
                                    r["config"]))
    m = metrics[best["config"]]

    doc: dict = {
        "schema": ADVICE_SCHEMA,
        "request": request.doc(),
        "states_w": {"H": states.h_w, "B": states.b_w, "L": states.l_w},
        "recommendation": {
            "config": best["config"],
            "caps_w": CapConfig(best["config"]).watts(states),
            "objective": request.objective,
            "score": best["score"],
            "within_budget": best["within_budget"],
            "predicted": {
                "makespan_s": m.makespan_s,
                "energy_j": m.energy_j,
                "gflops": m.gflops,
                "efficiency_gflops_per_w": m.efficiency,
            },
            "vs_default": {
                "perf_delta_pct": m.perf_delta_pct(base),
                "energy_saving_pct": m.energy_saving_pct(base),
                "efficiency_delta_pct": m.efficiency_delta_pct(base),
            },
        },
        "candidates": rows,
        "provenance": {"fingerprint": cache.fingerprint},
    }
    if request.energy_budget_j is not None:
        doc["budget"] = {
            "energy_budget_j": request.energy_budget_j,
            "feasible_candidates": sum(1 for r in rows if r["within_budget"]),
            "satisfied": best["within_budget"] is True,
        }
    return doc


def _score(request: AdviseRequest, m, base) -> float:
    """The objective value of one candidate (orientation per objective).

    Registry objectives evaluate through the planner's shared
    :class:`~repro.core.planner.Objective` definitions — the exact float
    expressions the bound-and-prune scan ranks with, so advisor answers and
    planner winners can never disagree.  ``weighted`` stays service-local
    (it needs the request's weights and the all-H baseline).
    """
    obj = OBJECTIVES.get(request.objective)
    if obj is not None:
        return obj.score(m)
    weights = request.weights_dict()  # "weighted": normalised blend, minimise
    return (
        weights.get("energy", 0.0) * (m.energy_j / base.energy_j)
        + weights.get("time", 0.0) * (m.makespan_s / base.makespan_s)
    )


def _rank(objective: str, score: float) -> float:
    """Map a score to please-minimise order."""
    return -score if objective in _MAXIMISE else score


def compute_advice(
    request: AdviseRequest,
    store_root: str,
    fingerprint: Optional[str] = None,
    jobs: int = 1,
) -> tuple[dict, dict]:
    """Cold path (runs on a worker shard): compute, write through, report.

    Returns ``(advice, cache_counts)``; every miss this computation pays is
    persisted to the shared store, so the next identical query anywhere —
    this process, another replica, tomorrow's CLI run — replays warm.
    """
    cache = ExperimentCache(store_root, fingerprint=fingerprint)
    advice = evaluate(request, cache, jobs=jobs)
    return advice, {"hits": cache.hits, "misses": cache.misses}


def probe_advice(
    request: AdviseRequest,
    store_root: str,
    fingerprint: Optional[str] = None,
) -> Optional[tuple[dict, dict]]:
    """Warm path: full advice from disk alone, or ``None`` on any miss."""
    cache = ProbeCache(store_root, fingerprint=fingerprint)
    try:
        advice = evaluate(request, cache, jobs=1)
    except ColdMiss:
        return None
    return advice, {"hits": cache.hits, "misses": 0}
