"""Single-flight request coalescing.

N identical queries in flight must cost **one** computation: the first
caller becomes the *leader* and runs it; everyone else awaits the same
future.  Three properties matter (and are what the tests pin):

- distinct keys never share a computation (M distinct + N identical
  in-flight requests -> exactly M+1 computations);
- a computation that raises propagates its exception to *every* waiter;
- nothing is memoised here — success lands in the on-disk cache (written
  by the computation itself), failure lands nowhere, so the next request
  for a failed key starts a fresh computation.

The map is event-loop-confined (no locks): ``lease``/``resolve`` are plain
synchronous methods called from the loop thread only.
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional


class Coalescer:
    """In-flight computations keyed by canonical request key."""

    def __init__(self) -> None:
        self._inflight: dict[str, asyncio.Future] = {}
        #: Computations started (leaders).
        self.started = 0
        #: Requests that joined an existing computation instead of starting one.
        self.joined = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def peek(self, key: str) -> Optional[asyncio.Future]:
        """The in-flight future for ``key``, or ``None``.  Does not count."""
        return self._inflight.get(key)

    def lease(self, key: str) -> tuple[asyncio.Future, bool]:
        """``(future, leader)`` — ``leader`` means the caller must compute.

        The returned future resolves with the computation's result (or its
        exception).  A non-leader caller has merely joined; it must not
        start any work.
        """
        fut = self._inflight.get(key)
        if fut is not None:
            self.joined += 1
            return fut, False
        fut = asyncio.get_running_loop().create_future()
        # A waiter that times out (or disconnects) may leave the future's
        # exception unretrieved; consume it so GC never logs a spurious
        # "exception was never retrieved".
        fut.add_done_callback(_retrieve_exception)
        self._inflight[key] = fut
        self.started += 1
        return fut, True

    def resolve(
        self,
        key: str,
        fut: asyncio.Future,
        result: Any = None,
        exc: Optional[BaseException] = None,
    ) -> None:
        """Deliver the leader's outcome to every waiter and retire the key.

        The key is removed *before* the future resolves, so a request that
        arrives after a failure starts a fresh computation — errors are
        never cached.
        """
        if self._inflight.get(key) is fut:
            del self._inflight[key]
        if fut.cancelled():  # pragma: no cover - defensive
            return
        if exc is not None:
            fut.set_exception(exc)
        else:
            fut.set_result(result)

    def stats(self) -> dict:
        return {
            "inflight": len(self._inflight),
            "started": self.started,
            "joined": self.joined,
        }


def _retrieve_exception(fut: asyncio.Future) -> None:
    if not fut.cancelled():
        fut.exception()
