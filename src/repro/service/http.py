"""Minimal HTTP/1.1 over asyncio streams — requests in, responses out.

Deliberately tiny: the service speaks plain HTTP/1.1 with
``Content-Length`` bodies and keep-alive, which is everything the client,
the CI smoke job, ``curl`` and a Prometheus scraper need.  No chunked
transfer encoding (501), no multipart, no TLS.  Hand-rolled because the
stdlib offers no asyncio HTTP server and this repo adds no dependencies.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Optional
from urllib.parse import parse_qs, urlsplit

#: Maximum accepted header block, in bytes.
MAX_HEADER_BYTES = 16 * 1024
#: Maximum accepted request body, in bytes (advise documents are tiny).
MAX_BODY_BYTES = 256 * 1024

STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class BadRequest(ValueError):
    """An unparseable or oversized request; carries the status to answer."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    path: str
    query: dict[str, list[str]] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def close(self) -> bool:
        return self.headers.get("connection", "").lower() == "close"


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`BadRequest` on malformed input (the caller answers with
    the carried status and closes) and propagates ``IncompleteReadError``
    /``LimitOverrunError`` style truncation as :class:`BadRequest` too.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests: keep-alive ended
        raise BadRequest("truncated request head") from None
    except asyncio.LimitOverrunError:
        raise BadRequest("header block too large", status=413) from None
    if len(head) > MAX_HEADER_BYTES:
        raise BadRequest("header block too large", status=413)

    lines = head[:-4].decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise BadRequest(f"malformed request line {lines[0]!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise BadRequest(f"unsupported protocol {version!r}", status=501)

    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, sep, value = line.partition(":")
        if not sep or not name.strip():
            raise BadRequest(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise BadRequest("chunked bodies not supported", status=501)

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise BadRequest(
                f"bad content-length {headers['content-length']!r}"
            ) from None
        if length < 0:
            raise BadRequest(f"bad content-length {length}")
        if length > MAX_BODY_BYTES:
            raise BadRequest("request body too large", status=413)
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise BadRequest("truncated request body") from None

    split = urlsplit(target)
    return Request(
        method=method.upper(),
        target=target,
        path=split.path or "/",
        query=parse_qs(split.query),
        headers=headers,
        body=body,
    )


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    close: bool = False,
    extra_headers: Optional[dict[str, str]] = None,
) -> bytes:
    """Serialise one response (always with Content-Length)."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'close' if close else 'keep-alive'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
