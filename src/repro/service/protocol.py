"""Advise request schema: strict validation at the service boundary.

Everything a request can say is normalised here, before any cache key is
built: strings are checked against the catalogs, floats go through
:func:`repro.cache.canonical_number` (which canonicalises ``-0.0`` and
rejects NaN/Infinity with a message naming the field), unknown fields are
errors.  The payoff is twofold — a malformed request becomes a **400** with
a usable message instead of a 500 from the no-NaN JSON encoder deep inside
the key layer, and two requests that mean the same thing always coalesce
onto the same in-flight computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.cache.keys import canonical_number
from repro.core.capconfig import CapConfig
from repro.core.tradeoff import OPERATIONS
from repro.experiments.platforms import TABLE2_PAPER
from repro.experiments.runner import SCALES
from repro.hardware.catalog import PLATFORMS
from repro.runtime import SCHEDULERS

#: Objectives the advisor can optimise.  ``efficiency``/``gflops`` maximise,
#: the rest minimise; ``edp``/``ed2p`` are the energy-delay products of
#: Patrou et al. (arXiv 2505.21758); ``weighted`` minimises a normalised
#: energy/time blend against the all-H default.
OBJECTIVES = ("efficiency", "gflops", "energy", "makespan", "edp", "ed2p", "weighted")

#: Keys :data:`OBJECTIVES`' ``weighted`` blend accepts.
WEIGHT_KEYS = ("energy", "time")

_ALLOWED_FIELDS = frozenset({
    "platform", "op", "precision", "scale", "scheduler", "seed",
    "objective", "weights", "energy_budget_j", "configs", "cpu_caps",
})


class ValidationError(ValueError):
    """A request the service must answer with 400, never a traceback."""


@dataclass(frozen=True)
class AdviseRequest:
    """One validated, normalised advise query (hashable, picklable)."""

    platform: str
    op: str
    precision: str
    scale: str
    scheduler: str
    seed: int
    objective: str
    weights: Optional[tuple[tuple[str, float], ...]]
    energy_budget_j: Optional[float]
    configs: Optional[tuple[str, ...]]
    cpu_caps: Optional[tuple[tuple[int, float], ...]]

    def weights_dict(self) -> dict[str, float]:
        return dict(self.weights) if self.weights else {}

    def cpu_caps_dict(self) -> dict[int, float]:
        return dict(self.cpu_caps) if self.cpu_caps else {}

    def doc(self) -> dict:
        """The canonical JSON document of this request.

        Equal requests produce equal documents regardless of the field
        order or float spelling of the original JSON — this document is
        what the advise cache key and the coalescer key are built from,
        and it is echoed back in the response for provenance.
        """
        return {
            "platform": self.platform,
            "op": self.op,
            "precision": self.precision,
            "scale": self.scale,
            "scheduler": self.scheduler,
            "seed": self.seed,
            "objective": self.objective,
            "weights": dict(self.weights) if self.weights is not None else None,
            "energy_budget_j": self.energy_budget_j,
            "configs": list(self.configs) if self.configs is not None else None,
            "cpu_caps": (
                {str(pkg): w for pkg, w in self.cpu_caps}
                if self.cpu_caps is not None else None
            ),
        }


def _require_str(doc: Mapping, field: str, default: str, allowed) -> str:
    value = doc.get(field, default)
    if not isinstance(value, str):
        raise ValidationError(f"{field} must be a string, got {value!r}")
    if value not in allowed:
        raise ValidationError(
            f"unknown {field} {value!r}; have {sorted(allowed)}"
        )
    return value


def _finite(value, field: str) -> float:
    """Boundary float: ``-0.0`` canonicalised, non-finite -> 400."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(f"{field} must be a number, got {value!r}")
    try:
        return canonical_number(value, field)
    except ValueError as exc:
        raise ValidationError(str(exc)) from None


def parse_advise_request(doc: object) -> AdviseRequest:
    """Validate a decoded JSON body into an :class:`AdviseRequest`.

    Raises :class:`ValidationError` (HTTP 400) on any problem; a request
    that parses is guaranteed to survive cache-key encoding and to name
    only platforms, operations, schedulers and cap states that exist.
    """
    if not isinstance(doc, dict):
        raise ValidationError(f"request body must be a JSON object, got "
                              f"{type(doc).__name__}")
    unknown = set(doc) - _ALLOWED_FIELDS
    if unknown:
        raise ValidationError(
            f"unknown fields {sorted(unknown)}; allowed: {sorted(_ALLOWED_FIELDS)}"
        )

    if "platform" not in doc:
        raise ValidationError("missing required field 'platform'")
    platform = _require_str(doc, "platform", "", PLATFORMS)
    op = _require_str(doc, "op", "gemm", OPERATIONS)
    precision = _require_str(doc, "precision", "double", ("single", "double"))
    scale = _require_str(doc, "scale", "small", SCALES)
    scheduler = _require_str(doc, "scheduler", "dmdas", SCHEDULERS)
    if (platform, op, precision) not in TABLE2_PAPER:
        raise ValidationError(
            f"no Table II operation instance for ({platform}, {op}, {precision})"
        )

    seed = doc.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise ValidationError(f"seed must be an integer, got {seed!r}")

    objective, weights = _parse_objective(doc)

    budget = doc.get("energy_budget_j")
    if budget is not None:
        budget = _finite(budget, "energy_budget_j")
        if budget < 0:
            raise ValidationError(
                f"energy_budget_j must be non-negative, got {budget!r}"
            )

    configs = _parse_configs(doc.get("configs"), PLATFORMS[platform].n_gpus)
    cpu_caps = _parse_cpu_caps(doc.get("cpu_caps"))

    return AdviseRequest(
        platform=platform, op=op, precision=precision, scale=scale,
        scheduler=scheduler, seed=seed, objective=objective, weights=weights,
        energy_budget_j=budget, configs=configs, cpu_caps=cpu_caps,
    )


def _parse_objective(doc: Mapping):
    objective = doc.get("objective", "efficiency")
    if not isinstance(objective, str) or objective not in OBJECTIVES:
        raise ValidationError(
            f"unknown objective {objective!r}; have {list(OBJECTIVES)}"
        )
    raw = doc.get("weights")
    if objective != "weighted":
        if raw is not None:
            raise ValidationError(
                f"weights only apply to objective 'weighted', not {objective!r}"
            )
        return objective, None
    if not isinstance(raw, dict) or not raw:
        raise ValidationError(
            "objective 'weighted' needs weights, e.g. "
            '{"energy": 0.5, "time": 0.5}'
        )
    unknown = set(raw) - set(WEIGHT_KEYS)
    if unknown:
        raise ValidationError(
            f"unknown weight keys {sorted(unknown)}; allowed: {list(WEIGHT_KEYS)}"
        )
    weights = tuple(
        (key, _finite(raw[key], f"weights[{key}]"))
        for key in WEIGHT_KEYS if key in raw
    )
    if any(w < 0 for _, w in weights):
        raise ValidationError("weights must be non-negative")
    if all(w == 0 for _, w in weights):
        raise ValidationError("at least one weight must be positive")
    return objective, weights


def _parse_configs(raw, n_gpus: int) -> Optional[tuple[str, ...]]:
    if raw is None:
        return None
    if not isinstance(raw, list) or not raw:
        raise ValidationError("configs must be a non-empty list of cap strings")
    out: list[str] = []
    for item in raw:
        if not isinstance(item, str):
            raise ValidationError(f"configs entries must be strings, got {item!r}")
        try:
            config = CapConfig(item.upper())
        except ValueError as exc:
            raise ValidationError(str(exc)) from None
        if config.n_gpus != n_gpus:
            raise ValidationError(
                f"config {config.letters!r} has {config.n_gpus} states for a "
                f"{n_gpus}-GPU platform"
            )
        if config.letters not in out:
            out.append(config.letters)
    return tuple(out)


def _parse_cpu_caps(raw) -> Optional[tuple[tuple[int, float], ...]]:
    if raw is None:
        return None
    if not isinstance(raw, dict) or not raw:
        raise ValidationError(
            'cpu_caps must be a non-empty object like {"1": 60.0}'
        )
    caps: list[tuple[int, float]] = []
    for pkg, watts in raw.items():
        try:
            idx = int(pkg)
        except (TypeError, ValueError):
            raise ValidationError(
                f"cpu_caps package {pkg!r} is not an integer index"
            ) from None
        w = _finite(watts, f"cpu_caps[{pkg}]")
        if w <= 0:
            raise ValidationError(f"cpu_caps[{pkg}] must be positive, got {w!r}")
        caps.append((idx, w))
    return tuple(sorted(caps))
