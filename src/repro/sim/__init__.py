"""Discrete-event simulation core.

This package provides the minimal deterministic event engine the rest of the
reproduction is built on: a :class:`~repro.sim.engine.Simulator` with a
monotonic clock and cancellable events, trace collection utilities
(:mod:`repro.sim.tracing`) used for Gantt-style execution records, and seeded
random-stream management (:mod:`repro.sim.rng`) so every experiment is
reproducible bit-for-bit.
"""

from repro.sim.engine import (
    ENGINE_TOTALS,
    EngineTotals,
    EventHandle,
    Simulator,
    SimulationError,
)
from repro.sim.rng import RNGPool
from repro.sim.tracing import Interval, Point, Tracer

__all__ = [
    "ENGINE_TOTALS",
    "EngineTotals",
    "EventHandle",
    "Simulator",
    "SimulationError",
    "RNGPool",
    "Interval",
    "Point",
    "Tracer",
]
