"""Deterministic discrete-event simulation engine.

The engine is intentionally small: timestamped events ordered by
``(time, seq)`` with a monotonically increasing sequence number as
tie-breaker, which makes execution order fully deterministic for equal
timestamps.  All simulated components (devices, workers, links) schedule
plain callbacks; there is no coroutine machinery, which keeps the hot loop
cheap enough to simulate DAGs with tens of thousands of tasks in well under
a second.

Events are plain ``(time, seq, fn, args, handle)`` tuples, so every
ordering decision is a C-level tuple comparison on ``(time, seq)`` —
``seq`` is unique, the trailing fields are never compared.  The pending
set is split into two structures:

- a **monotonic tail** (:class:`collections.deque`): an event whose key is
  >= every key ever admitted to the tail is appended in O(1) and popped in
  O(1).  Discrete-event workloads are overwhelmingly monotonic — callbacks
  schedule things at or after the current frontier — so the common case
  never touches a heap, and a same-timestamp burst costs one append/pop
  per event instead of a full O(log n) sift pair;
- a **spill heap** (``heapq``) for the out-of-order remainder (e.g. a
  retry scheduled *before* an already-queued deadline).  The drain loop
  merges the two fronts by key, so global ordering is exactly the classic
  single-heap semantics.

Events that nothing will ever cancel can skip the :class:`EventHandle`
allocation entirely via :meth:`Simulator.post` / :meth:`Simulator.post_at`
(``handle`` stays ``None``); this is the enqueue path the runtime engine
uses whenever no fault injector needs a cancel hook, and it is measurably
faster than :meth:`Simulator.schedule`.

:meth:`Simulator.run` drains in a single loop — cancelled fronts are
discarded and live events fired in the same pass (no separate
``peek``/``step`` scan pair) — and the bounded path (``until`` /
``max_events``) delivers bursts of equal-timestamp events as one batch:
the stop conditions are evaluated once per distinct timestamp, not once
per event.

Time is a float in **seconds**.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

#: Event tuple layout (the drain loops hard-code these indices).
_TIME, _SEQ, _FN, _ARGS, _HANDLE = range(5)

_NEG_INF = float("-inf")


class SimulationError(RuntimeError):
    """Raised on invalid engine usage (e.g. scheduling in the past)."""


@dataclass
class EngineTotals:
    """Process-wide accumulation of engine work across all Simulators.

    Every :meth:`Simulator.run` (and every directly driven
    :meth:`Simulator.step`) flushes its deltas here, so tools that compare
    whole workloads (e.g. the warm-vs-cold cache benchmark) can report how
    much simulation work actually happened without threading a registry
    into every engine.  Counters only reflect work done in *this* process —
    pool workers accumulate their own.
    """

    events: int = 0
    compactions: int = 0
    cancelled: int = 0

    def snapshot(self) -> tuple[int, int, int]:
        return (self.events, self.compactions, self.cancelled)


#: The per-process accumulator (import and snapshot around a workload).
ENGINE_TOTALS = EngineTotals()


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple,
        sim: "Optional[Simulator]" = None,
    ):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.9f} {getattr(self.fn, '__name__', self.fn)} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(2.0, out.append, "b")
    >>> _ = sim.schedule(1.0, out.append, "a")
    >>> sim.run()
    >>> out
    ['a', 'b']
    >>> sim.now
    2.0
    """

    #: Don't bother compacting pending sets smaller than this — popping
    #: lazily is cheap and compacting tiny sets would thrash.
    COMPACT_MIN_SIZE = 64

    __slots__ = (
        "_tail",
        "_spill",
        "_tail_key",
        "_seq",
        "_now",
        "_running",
        "_n_cancelled",
        "n_processed",
        "n_compactions",
        "n_cancelled_total",
        "_flushed_events",
        "_flushed_compactions",
        "_flushed_cancelled",
    )

    def __init__(self) -> None:
        self._tail: deque[tuple] = deque()
        self._spill: list[tuple] = []
        self._tail_key = _NEG_INF  # high-water time admitted to the tail
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._n_cancelled = 0
        self.n_processed = 0
        self.n_compactions = 0
        self.n_cancelled_total = 0
        self._flushed_events = 0
        self._flushed_compactions = 0
        self._flushed_cancelled = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def n_pending(self) -> int:
        """Number of queued entries (cancelled-but-undiscarded included)."""
        return len(self._tail) + len(self._spill)

    # ------------------------------------------------------------- scheduling

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        handle = EventHandle(time, fn, args, self)
        seq = self._seq
        self._seq = seq + 1
        if time >= self._tail_key:
            self._tail_key = time
            self._tail.append((time, seq, fn, args, handle))
        else:
            heappush(self._spill, (time, seq, fn, args, handle))
        return handle

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        handle = EventHandle(time, fn, args, self)
        seq = self._seq
        self._seq = seq + 1
        if time >= self._tail_key:
            self._tail_key = time
            self._tail.append((time, seq, fn, args, handle))
        else:
            heappush(self._spill, (time, seq, fn, args, handle))
        return handle

    def post(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fast-path :meth:`schedule` for events nothing will ever cancel.

        Skips the :class:`EventHandle` allocation; the event cannot be
        cancelled.  This is the cheapest way to enqueue work and what the
        runtime engine uses when no fault injector needs a cancel hook.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        if time >= self._tail_key:
            self._tail_key = time
            self._tail.append((time, seq, fn, args, None))
        else:
            heappush(self._spill, (time, seq, fn, args, None))

    def post_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fast-path :meth:`schedule_at`: absolute-time, non-cancellable."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        if time >= self._tail_key:
            self._tail_key = time
            self._tail.append((time, seq, fn, args, None))
        else:
            heappush(self._spill, (time, seq, fn, args, None))

    # ------------------------------------------------------------- compaction

    def _note_cancelled(self) -> None:
        """Called by :meth:`EventHandle.cancel`; compacts the pending set
        when cancelled entries outnumber live ones.

        Cancelled events are normally discarded lazily as they surface at
        the queue front, but a workload that cancels much more than it
        fires (e.g. timeout guards) would otherwise accumulate dead entries
        and inflate every queue operation.  Compaction filters them out —
        in place, so the drain loops' local references stay valid even when
        a fired callback cancels enough events to compact mid-run.  Entries
        keep their (time, seq) keys, so event order is unchanged.
        """
        self._n_cancelled += 1
        self.n_cancelled_total += 1
        n = len(self._tail) + len(self._spill)
        if n >= self.COMPACT_MIN_SIZE and self._n_cancelled * 2 > n:
            tail = self._tail
            live = [e for e in tail if e[_HANDLE] is None or not e[_HANDLE].cancelled]
            tail.clear()
            tail.extend(live)  # tail was key-sorted; filtering preserves that
            spill = self._spill
            spill[:] = [
                e for e in spill if e[_HANDLE] is None or not e[_HANDLE].cancelled
            ]
            heapify(spill)
            self._n_cancelled = 0
            self.n_compactions += 1

    # ---------------------------------------------------------------- driving

    def _front(self) -> Optional[tuple]:
        """The live minimum-key entry, discarding cancelled fronts.

        Returns the entry without removing it (``None`` when idle).
        """
        tail, spill = self._tail, self._spill
        while True:
            if spill:
                if tail and tail[0] < spill[0]:
                    entry, from_tail = tail[0], True
                else:
                    entry, from_tail = spill[0], False
            elif tail:
                entry, from_tail = tail[0], True
            else:
                return None
            handle = entry[_HANDLE]
            if handle is None or not handle.cancelled:
                return entry
            if from_tail:
                tail.popleft()
            else:
                heappop(spill)
            self._n_cancelled -= 1

    def _pop_front(self, entry: tuple) -> None:
        """Remove ``entry`` (the current live front) from its source."""
        tail = self._tail
        if tail and tail[0] is entry:
            tail.popleft()
        else:
            heappop(self._spill)

    def peek(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None`` if idle."""
        entry = self._front()
        return None if entry is None else entry[_TIME]

    def step(self) -> bool:
        """Process exactly one event.  Returns ``False`` if none are pending.

        Unlike :meth:`run`, ``step`` flushes :data:`ENGINE_TOTALS` on every
        call, so callers driving the engine event-by-event (without ever
        entering ``run``) still keep the process-wide totals current.
        """
        entry = self._front()
        if entry is None:
            self._flush_totals()
            return False
        self._pop_front(entry)
        self._now = entry[_TIME]
        self.n_processed += 1
        self._flush_totals()
        entry[_FN](*entry[_ARGS])
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the pending set drains, ``until`` is reached, or
        ``max_events`` have been processed.

        ``until`` advances the clock to exactly ``until`` when the queue
        drains earlier, mirroring how a wall-clock measurement window
        behaves.

        The drain is a single loop: cancelled fronts are discarded and live
        events fired in the same pass (no separate ``peek``/``step``
        scans).  The unbounded path is a tight pop-check-fire loop; the
        bounded path batches equal-timestamp bursts so the stop conditions
        are evaluated once per distinct timestamp.
        """
        if self._running:
            raise SimulationError("run() is not re-entrant")
        self._running = True
        tail = self._tail
        spill = self._spill
        popleft = tail.popleft
        pop = heappop
        processed = 0
        try:
            if until is None and max_events is None:
                # Tight drain: merge the two fronts, fire, repeat.
                while True:
                    if spill:
                        if tail and tail[0] < spill[0]:
                            entry = popleft()
                        else:
                            entry = pop(spill)
                    elif tail:
                        entry = popleft()
                    else:
                        break
                    time, _seq, fn, args, handle = entry
                    if handle is not None and handle.cancelled:
                        self._n_cancelled -= 1
                        continue
                    self._now = time
                    processed += 1
                    fn(*args)
            else:
                while True:
                    entry = self._front()
                    if entry is None:
                        break
                    time = entry[_TIME]
                    if until is not None and time > until:
                        break
                    if max_events is not None and processed >= max_events:
                        break
                    self._pop_front(entry)
                    self._now = time
                    processed += 1
                    entry[_FN](*entry[_ARGS])
                    # Batch delivery: every remaining event at this exact
                    # timestamp was admitted by the ``until`` check above,
                    # so fire the burst without re-evaluating it per event.
                    while True:
                        if max_events is not None and processed >= max_events:
                            break
                        if spill:
                            if tail and tail[0] < spill[0]:
                                nxt, from_tail = tail[0], True
                            else:
                                nxt, from_tail = spill[0], False
                        elif tail:
                            nxt, from_tail = tail[0], True
                        else:
                            break
                        if nxt[_TIME] != time:
                            break
                        if from_tail:
                            popleft()
                        else:
                            pop(spill)
                        handle = nxt[_HANDLE]
                        if handle is not None and handle.cancelled:
                            self._n_cancelled -= 1
                            continue
                        processed += 1
                        nxt[_FN](*nxt[_ARGS])
        finally:
            self.n_processed += processed
            self._running = False
            self._flush_totals()
        if until is not None and until > self._now:
            self._now = until

    def _flush_totals(self) -> None:
        """Push this simulator's work deltas into :data:`ENGINE_TOTALS`."""
        ENGINE_TOTALS.events += self.n_processed - self._flushed_events
        ENGINE_TOTALS.compactions += self.n_compactions - self._flushed_compactions
        ENGINE_TOTALS.cancelled += self.n_cancelled_total - self._flushed_cancelled
        self._flushed_events = self.n_processed
        self._flushed_compactions = self.n_compactions
        self._flushed_cancelled = self.n_cancelled_total

    def idle(self) -> bool:
        """True when no (non-cancelled) events are pending."""
        return self._front() is None
