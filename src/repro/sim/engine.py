"""Deterministic discrete-event simulation engine.

The engine is intentionally small: a binary heap of timestamped events with a
monotonically increasing sequence number as tie-breaker, which makes execution
order fully deterministic for equal timestamps.  All simulated components
(devices, workers, links) schedule plain callbacks; there is no coroutine
machinery, which keeps the hot loop cheap enough to simulate DAGs with tens of
thousands of tasks in well under a second.

Time is a float in **seconds**.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised on invalid engine usage (e.g. scheduling in the past)."""


@dataclass
class EngineTotals:
    """Process-wide accumulation of engine work across all Simulators.

    Every :meth:`Simulator.run` flushes its deltas here on exit, so tools
    that compare whole workloads (e.g. the warm-vs-cold cache benchmark) can
    report how much simulation work actually happened without threading a
    registry into every engine.  Counters only reflect work done in *this*
    process — pool workers accumulate their own.
    """

    events: int = 0
    compactions: int = 0
    cancelled: int = 0

    def snapshot(self) -> tuple[int, int, int]:
        return (self.events, self.compactions, self.cancelled)


#: The per-process accumulator (import and snapshot around a workload).
ENGINE_TOTALS = EngineTotals()


@dataclass(order=True)
class _HeapEntry:
    time: float
    seq: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("time", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        fn: Callable[..., Any],
        args: tuple,
        sim: "Optional[Simulator]" = None,
    ):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.9f} {getattr(self.fn, '__name__', self.fn)} {state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(2.0, out.append, "b")
    >>> _ = sim.schedule(1.0, out.append, "a")
    >>> sim.run()
    >>> out
    ['a', 'b']
    >>> sim.now
    2.0
    """

    #: Don't bother compacting heaps smaller than this — popping lazily is
    #: cheap and compacting tiny heaps would thrash.
    COMPACT_MIN_SIZE = 64

    def __init__(self) -> None:
        self._heap: list[_HeapEntry] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._n_cancelled = 0
        self.n_processed = 0
        self.n_compactions = 0
        self.n_cancelled_total = 0
        self._flushed_events = 0
        self._flushed_compactions = 0
        self._flushed_cancelled = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        handle = EventHandle(time, fn, args, self)
        heapq.heappush(self._heap, _HeapEntry(time, next(self._seq), handle))
        return handle

    # ------------------------------------------------------------- compaction

    def _note_cancelled(self) -> None:
        """Called by :meth:`EventHandle.cancel`; compacts the heap when
        cancelled entries outnumber live ones.

        Cancelled events are normally discarded lazily as they surface at the
        heap top, but a workload that cancels much more than it fires (e.g.
        timeout guards) would otherwise accumulate dead entries and inflate
        every push/pop to O(log dead).  Compaction filters them out and
        re-heapifies — entries keep their (time, seq) keys, so event order is
        unchanged.
        """
        self._n_cancelled += 1
        self.n_cancelled_total += 1
        heap = self._heap
        if len(heap) >= self.COMPACT_MIN_SIZE and self._n_cancelled * 2 > len(heap):
            self._heap = [e for e in heap if not e.handle.cancelled]
            heapq.heapify(self._heap)
            self._n_cancelled = 0
            self.n_compactions += 1

    def peek(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None`` if idle."""
        while self._heap and self._heap[0].handle.cancelled:
            heapq.heappop(self._heap)
            self._n_cancelled -= 1
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Process exactly one event.  Returns ``False`` if none are pending."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            handle = entry.handle
            if handle.cancelled:
                self._n_cancelled -= 1
                continue
            self._now = entry.time
            self.n_processed += 1
            handle.fn(*handle.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the event heap drains, ``until`` is reached, or
        ``max_events`` have been processed.

        ``until`` advances the clock to exactly ``until`` when the heap drains
        earlier, mirroring how a wall-clock measurement window behaves.
        """
        if self._running:
            raise SimulationError("run() is not re-entrant")
        self._running = True
        processed = 0
        try:
            while True:
                nxt = self.peek()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    break
                if max_events is not None and processed >= max_events:
                    break
                self.step()
                processed += 1
        finally:
            self._running = False
            self._flush_totals()
        if until is not None and until > self._now:
            self._now = until

    def _flush_totals(self) -> None:
        """Push this simulator's work deltas into :data:`ENGINE_TOTALS`."""
        ENGINE_TOTALS.events += self.n_processed - self._flushed_events
        ENGINE_TOTALS.compactions += self.n_compactions - self._flushed_compactions
        ENGINE_TOTALS.cancelled += self.n_cancelled_total - self._flushed_cancelled
        self._flushed_events = self.n_processed
        self._flushed_compactions = self.n_compactions
        self._flushed_cancelled = self.n_cancelled_total

    def idle(self) -> bool:
        """True when no (non-cancelled) events are pending."""
        return self.peek() is None
