"""Named, seeded random streams.

Every stochastic element of the simulation (kernel-duration noise, calibration
noise, the ``random`` scheduler) draws from its own named stream derived from a
single experiment seed.  Streams are independent, so adding noise to one
component never perturbs another — a property the reproducibility tests rely
on.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RNGPool:
    """Factory of independent :class:`numpy.random.Generator` streams.

    >>> pool = RNGPool(seed=7)
    >>> a = pool.stream("kernel-noise")
    >>> b = pool.stream("scheduler")
    >>> a is pool.stream("kernel-noise")   # cached per name
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def stream(self, name: str) -> np.random.Generator:
        """Return (and cache) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(self._derive(name))
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RNGPool":
        """A child pool whose streams are independent of the parent's."""
        return RNGPool(self._derive(name))
