"""Execution trace collection.

Workers, devices and links record :class:`Interval` entries (busy periods,
transfers) and :class:`Point` entries (instantaneous markers such as cap
changes).  The tracer is what the energy accounting and the Gantt exporters
consume; it is deliberately append-only so tracing never perturbs scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional


@dataclass(frozen=True)
class Interval:
    """A half-open busy interval ``[start, end)`` attributed to a resource."""

    resource: str
    kind: str
    start: float
    end: float
    label: str = ""
    info: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        """True when the two intervals share a positive-length overlap."""
        return self.start < other.end and other.start < self.end


@dataclass(frozen=True)
class Point:
    """An instantaneous trace marker."""

    resource: str
    kind: str
    time: float
    label: str = ""
    info: dict = field(default_factory=dict)


class Tracer:
    """Append-only trace sink with simple query helpers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.intervals: list[Interval] = []
        self.points: list[Point] = []
        # Per-resource interval index, maintained on append so the query
        # helpers stay O(resource's intervals) instead of rescanning the
        # full list — report generation over large traces was quadratic.
        # Insertion order doubles as first-appearance order for resources().
        self._by_resource: dict[str, list[Interval]] = {}

    def interval(
        self,
        resource: str,
        kind: str,
        start: float,
        end: float,
        label: str = "",
        **info: Any,
    ) -> None:
        if not self.enabled:
            return
        if end < start:
            raise ValueError(f"interval end {end} before start {start}")
        iv = Interval(resource, kind, start, end, label, info)
        self.intervals.append(iv)
        self._by_resource.setdefault(resource, []).append(iv)

    def point(self, resource: str, kind: str, time: float, label: str = "", **info: Any) -> None:
        if not self.enabled:
            return
        self.points.append(Point(resource, kind, time, label, info))

    # ---------------------------------------------------------------- queries

    def by_resource(self, resource: str) -> list[Interval]:
        return list(self._by_resource.get(resource, ()))

    def by_kind(self, kind: str) -> list[Interval]:
        return [iv for iv in self.intervals if iv.kind == kind]

    def resources(self) -> list[str]:
        return list(self._by_resource)

    def busy_time(self, resource: str, kinds: Optional[Iterable[str]] = None) -> float:
        """Total busy time on a resource, merging overlapping intervals."""
        kindset = set(kinds) if kinds is not None else None
        ivs = sorted(
            (
                iv
                for iv in self._by_resource.get(resource, ())
                if kindset is None or iv.kind in kindset
            ),
            key=lambda iv: iv.start,
        )
        total = 0.0
        cur_start: Optional[float] = None
        cur_end = 0.0
        for iv in ivs:
            if cur_start is None:
                cur_start, cur_end = iv.start, iv.end
            elif iv.start <= cur_end:
                cur_end = max(cur_end, iv.end)
            else:
                total += cur_end - cur_start
                cur_start, cur_end = iv.start, iv.end
        if cur_start is not None:
            total += cur_end - cur_start
        return total

    def makespan(self) -> float:
        """End of the latest interval (0.0 on an empty trace)."""
        return max((iv.end for iv in self.intervals), default=0.0)

    def gantt_rows(self) -> Iterator[tuple[str, list[Interval]]]:
        """Iterate ``(resource, sorted-intervals)`` rows for rendering."""
        for res in self.resources():
            yield res, sorted(self.by_resource(res), key=lambda iv: iv.start)

    def to_records(self) -> list[dict]:
        """Flatten intervals to plain dicts (CSV/JSON friendly)."""
        return [
            {
                "resource": iv.resource,
                "kind": iv.kind,
                "start": iv.start,
                "end": iv.end,
                "label": iv.label,
                **iv.info,
            }
            for iv in self.intervals
        ]
