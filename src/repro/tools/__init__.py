"""Observability tooling: Gantt rendering, power sampling, trace export."""

from repro.tools.chrometrace import to_chrome_trace
from repro.tools.gantt import render_gantt
from repro.tools.powertrace import PowerSample, PowerSampler

__all__ = ["to_chrome_trace", "render_gantt", "PowerSample", "PowerSampler"]
