"""Chrome trace-event export (``chrome://tracing`` / Perfetto).

Converts a :class:`~repro.sim.tracing.Tracer` into the Trace Event JSON
format, one timeline row per resource, so executions can be inspected in
any Perfetto-compatible viewer — the workflow StarPU users get from its
FxT traces.

Counter tracks (``ph: "C"``) can be attached alongside the timeline rows:
Perfetto renders them as stacked area charts, which is how per-device
instantaneous power and per-worker backlog line up against the task
intervals (power dips become visible exactly where a cap state engages).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.sim.tracing import Tracer


@dataclass(frozen=True)
class CounterTrack:
    """One named counter series, e.g. ``power gpu0`` in watts."""

    name: str
    series: tuple[tuple[float, float], ...]
    unit: str = ""

    @classmethod
    def from_samples(cls, name: str, samples, unit: str = "") -> "CounterTrack":
        return cls(name, tuple((float(t), float(v)) for t, v in samples), unit)


def _resource_tids(tracer: Tracer) -> dict[str, int]:
    """Stable tid per resource, covering interval *and* point resources.

    Points on resources that never record an interval (e.g. a cap change on
    an otherwise-idle GPU) used to collapse onto tid 0 with no thread-name
    metadata; registering them here gives every resource its own named row.
    """
    tids = {name: i for i, name in enumerate(tracer.resources())}
    for point in tracer.points:
        if point.resource not in tids:
            tids[point.resource] = len(tids)
    return tids


def to_chrome_trace(
    tracer: Tracer,
    time_unit_us: float = 1e6,
    counters: Optional[Sequence[CounterTrack]] = None,
) -> dict:
    """Build a trace-event dict (serialise with ``json.dumps``).

    ``time_unit_us`` scales simulated seconds to microsecond timestamps
    (default: 1 simulated second = 1 second of trace time).  ``counters``
    are emitted as ``ph: "C"`` counter tracks on their own process row.
    """
    events = []
    tids = _resource_tids(tracer)
    for iv in tracer.intervals:
        events.append(
            {
                "name": iv.label or iv.kind,
                "cat": iv.kind,
                "ph": "X",
                "ts": iv.start * time_unit_us,
                "dur": iv.duration * time_unit_us,
                "pid": 0,
                "tid": tids[iv.resource],
                "args": dict(iv.info),
            }
        )
    for point in tracer.points:
        events.append(
            {
                "name": point.label or point.kind,
                "cat": point.kind,
                "ph": "i",
                "ts": point.time * time_unit_us,
                "pid": 0,
                "tid": tids[point.resource],
                "s": "t",
                "args": dict(point.info),
            }
        )
    for track in counters or ():
        value_key = track.unit or "value"
        for t, v in track.series:
            events.append(
                {
                    "name": track.name,
                    "ph": "C",
                    "ts": t * time_unit_us,
                    "pid": 0,
                    "args": {value_key: v},
                }
            )
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": resource},
        }
        for resource, tid in tids.items()
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def counter_series(doc: dict, name: str, time_unit_us: float = 1e6) -> list[tuple[float, float]]:
    """Recover one counter track's ``(time_s, value)`` series from a trace
    document — the read side of the round trip, used by tests and reports."""
    out = []
    for event in doc["traceEvents"]:
        if event.get("ph") == "C" and event.get("name") == name:
            value = next(iter(event["args"].values()))
            out.append((event["ts"] / time_unit_us, value))
    return out


def write_chrome_trace(
    tracer: Tracer,
    path: str,
    counters: Optional[Sequence[CounterTrack]] = None,
) -> None:
    """Serialise the trace to a JSON file loadable by Perfetto."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(tracer, counters=counters), fh)
