"""Chrome trace-event export (``chrome://tracing`` / Perfetto).

Converts a :class:`~repro.sim.tracing.Tracer` into the Trace Event JSON
format, one timeline row per resource, so executions can be inspected in
any Perfetto-compatible viewer — the workflow StarPU users get from its
FxT traces.
"""

from __future__ import annotations

import json

from repro.sim.tracing import Tracer


def to_chrome_trace(tracer: Tracer, time_unit_us: float = 1e6) -> dict:
    """Build a trace-event dict (serialise with ``json.dumps``).

    ``time_unit_us`` scales simulated seconds to microsecond timestamps
    (default: 1 simulated second = 1 second of trace time).
    """
    events = []
    tids = {name: i for i, name in enumerate(tracer.resources())}
    for iv in tracer.intervals:
        events.append(
            {
                "name": iv.label or iv.kind,
                "cat": iv.kind,
                "ph": "X",
                "ts": iv.start * time_unit_us,
                "dur": iv.duration * time_unit_us,
                "pid": 0,
                "tid": tids[iv.resource],
                "args": dict(iv.info),
            }
        )
    for point in tracer.points:
        events.append(
            {
                "name": point.label or point.kind,
                "cat": point.kind,
                "ph": "i",
                "ts": point.time * time_unit_us,
                "pid": 0,
                "tid": tids.get(point.resource, 0),
                "s": "t",
                "args": dict(point.info),
            }
        )
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": resource},
        }
        for resource, tid in tids.items()
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    """Serialise the trace to a JSON file loadable by Perfetto."""
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(tracer), fh)
