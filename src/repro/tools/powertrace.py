"""Power-timeline sampling (the simulated ``nvidia-smi dmon``).

A :class:`PowerSampler` polls every device's instantaneous draw on a fixed
period while a runtime run executes, through the same NVML/RAPL facades a
monitoring daemon would use on real hardware.  Start it before
``runtime.run``; it re-arms itself until the run drains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import nvml
from repro.hardware.node import Node
from repro.runtime.engine import RuntimeSystem


@dataclass(frozen=True)
class PowerSample:
    time_s: float
    device_w: dict[str, float]

    @property
    def total_w(self) -> float:
        return sum(self.device_w.values())


@dataclass
class PowerSampler:
    """Periodic full-node power sampling on the simulation clock."""

    node: Node
    runtime: RuntimeSystem
    period_s: float = 0.05
    samples: list[PowerSample] = field(default_factory=list)
    #: ``(start, end)`` windows during which the meter records nothing
    #: (fault injection: a crashed monitoring daemon, an NVML hiccup).
    #: The tick keeps re-arming through a blackout so sampling resumes on
    #: schedule afterwards; dropped ticks are counted in ``n_dropped``.
    blackouts: list[tuple[float, float]] = field(default_factory=list)
    n_dropped: int = 0
    #: Optional live-telemetry bus; each non-blackout sample also publishes
    #: a ``power`` event so dashboards see the timeline during the run.
    bus: Optional[object] = None

    def start(self) -> None:
        nvml.nvmlInit(self.node)
        self.runtime.sim.schedule(0.0, self._tick)

    def _in_blackout(self, now: float) -> bool:
        return any(t0 <= now < t1 for t0, t1 in self.blackouts)

    def _tick(self) -> None:
        now = self.runtime.sim.now
        if self._in_blackout(now):
            self.n_dropped += 1
        else:
            reading: dict[str, float] = {}
            for cpu in self.node.cpus:
                # RAPL exposes energy, not power; a daemon differentiates.
                # The model's instantaneous value is equivalent and cheaper.
                reading[cpu.name] = cpu.power_w
            for i in range(len(self.node.gpus)):
                handle = nvml.nvmlDeviceGetHandleByIndex(i)
                reading[f"gpu{i}"] = nvml.nvmlDeviceGetPowerUsage(handle) / 1000.0
            sample = PowerSample(now, reading)
            self.samples.append(sample)
            if self.bus is not None:
                self.bus.publish(
                    {"t": now, "type": "power", "total_w": sample.total_w, **reading}
                )
        if self.runtime.pending_tasks > 0:
            self.runtime.sim.schedule(self.period_s, self._tick)

    # ----------------------------------------------------------------- views

    def devices(self) -> list[str]:
        """Device names covered by the samples (empty before the first tick)."""
        return list(self.samples[0].device_w) if self.samples else []

    def to_records(self) -> list[dict]:
        """Flatten samples to plain dicts (JSONL friendly)."""
        return [
            {"time_s": s.time_s, "total_w": s.total_w, **s.device_w}
            for s in self.samples
        ]

    def counter_tracks(self) -> list:
        """One Perfetto counter track per device (instantaneous watts)."""
        from repro.tools.chrometrace import CounterTrack

        return [
            CounterTrack.from_samples(f"power {device}", self.series(device), unit="W")
            for device in self.devices()
        ]

    def peak_w(self, device: Optional[str] = None) -> float:
        if not self.samples:
            return 0.0
        if device is None:
            return max(s.total_w for s in self.samples)
        return max(s.device_w[device] for s in self.samples)

    def average_w(self, device: Optional[str] = None) -> float:
        if not self.samples:
            return 0.0
        if device is None:
            return sum(s.total_w for s in self.samples) / len(self.samples)
        return sum(s.device_w[device] for s in self.samples) / len(self.samples)

    def series(self, device: str) -> list[tuple[float, float]]:
        return [(s.time_s, s.device_w[device]) for s in self.samples]

    def ascii_plot(self, device: str, width: int = 60, height: int = 8) -> str:
        """Tiny terminal sparkline of one device's power over time."""
        series = self.series(device)
        if not series:
            return "(no samples)\n"
        values = [v for _, v in series]
        vmax = max(values) or 1.0
        # Downsample to `width` buckets by averaging.
        buckets = []
        for b in range(width):
            chunk = values[b * len(values) // width : (b + 1) * len(values) // width]
            buckets.append(sum(chunk) / len(chunk) if chunk else 0.0)
        rows = []
        for level in range(height, 0, -1):
            threshold = vmax * (level - 0.5) / height
            rows.append(
                f"{vmax * level / height:7.0f}W |"
                + "".join("*" if v >= threshold else " " for v in buckets)
            )
        rows.append(" " * 9 + "-" * width)
        return "\n".join(rows) + "\n"
