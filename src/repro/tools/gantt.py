"""ASCII Gantt rendering of execution traces.

Turns a :class:`~repro.sim.tracing.Tracer` into a terminal-friendly timeline:
one row per resource, one character per time bucket, with the per-bucket
dominant activity kind marked.  Useful for eyeballing how the scheduler
drains work off capped GPUs.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.tracing import Tracer

#: Character per interval kind (first match wins inside a bucket).
KIND_CHARS = {
    "task": "#",
    "xfer-h2d": ">",
    "xfer-d2h": "<",
}

DEFAULT_WIDTH = 80


def render_gantt(
    tracer: Tracer,
    width: int = DEFAULT_WIDTH,
    resources: Optional[list[str]] = None,
    t_min: Optional[float] = None,
    t_max: Optional[float] = None,
) -> str:
    """Render the trace as fixed-width rows of activity buckets.

    Buckets containing any ``task`` interval print ``#``; otherwise transfer
    activity prints ``>``/``<``; idle prints ``.``.  A time ruler is appended.
    """
    if width < 10:
        raise ValueError("width must be at least 10")
    if not tracer.intervals:
        return "(empty trace)\n"
    lo = min(iv.start for iv in tracer.intervals) if t_min is None else t_min
    hi = tracer.makespan() if t_max is None else t_max
    if hi <= lo:
        raise ValueError("empty time window")
    span = hi - lo
    names = resources if resources is not None else tracer.resources()
    label_w = max(len(n) for n in names) + 1
    lines = []
    for name in names:
        cells = [" "] * width
        occupancy = [""] * width
        for iv in tracer.by_resource(name):
            if iv.end <= lo or iv.start >= hi:
                continue
            b0 = max(0, int((max(iv.start, lo) - lo) / span * width))
            b1 = min(width - 1, int((min(iv.end, hi) - lo) / span * width))
            for b in range(b0, b1 + 1):
                char = KIND_CHARS.get(iv.kind, "#")
                # tasks dominate transfers in a shared bucket
                if occupancy[b] != "task":
                    cells[b] = char
                    occupancy[b] = iv.kind
        row = "".join(c if c != " " else "." for c in cells)
        lines.append(f"{name.ljust(label_w)}|{row}|")
    ruler = f"{''.ljust(label_w)}|{lo:<{width // 2}.3f}{hi:>{width - width // 2}.3f}|"
    lines.append(ruler)
    legend = "  # task   > h2d   < d2h   . idle"
    lines.append(legend)
    return "\n".join(lines) + "\n"


def utilization_summary(tracer: Tracer) -> list[tuple[str, float]]:
    """Per-resource busy fraction over the trace makespan."""
    makespan = tracer.makespan()
    if makespan == 0:
        return []
    return [
        (name, tracer.busy_time(name) / makespan) for name in tracer.resources()
    ]
