"""The paper's contribution: unbalanced GPU power capping studies.

- :mod:`repro.core.capconfig` — H/B/L cap-state strings (``HHBB``) and their
  translation to per-GPU watt caps;
- :mod:`repro.core.sweep` — the kernel-level cap sweep of Sec. II (Fig. 1);
- :mod:`repro.core.bestcap` — ``P_best`` selection (Tables I and II);
- :mod:`repro.core.tradeoff` — task-based operations under cap configs, with
  the full performance/energy/efficiency report (Figs. 3, 4);
- :mod:`repro.core.cpu_capping` — the CPU-capping study (Fig. 6);
- :mod:`repro.core.dynamic` — EXTENSION: a DEPO-style dynamic cap governor;
- :mod:`repro.core.efficiency` / :mod:`repro.core.reporting` — metrics and
  text-table emitters.
"""

from repro.core.bestcap import BestCap, best_cap_for_gemm
from repro.core.capconfig import CapConfig, CapStates, standard_configs
from repro.core.dynamic import DynamicCapGovernor, GovernorStep
from repro.core.efficiency import ConfigMetrics, pct_change
from repro.core.sweep import SweepPoint, sweep_gemm
from repro.core.tradeoff import OperationSpec, run_config_set, run_operation

__all__ = [
    "BestCap",
    "best_cap_for_gemm",
    "CapConfig",
    "CapStates",
    "standard_configs",
    "DynamicCapGovernor",
    "GovernorStep",
    "ConfigMetrics",
    "pct_change",
    "SweepPoint",
    "sweep_gemm",
    "OperationSpec",
    "run_config_set",
    "run_operation",
]
