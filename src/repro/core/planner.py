"""Analytic bound-and-prune sweep planner.

The layer above the simulator brute-forces: every cap-sweep point and every
cap configuration of a grid costs one full discrete-event simulation, even
though the analytic GPU operating-point and kernel models can predict most
outcomes closely — and some of them *exactly*.  This module plans a grid
evaluation so that only configurations that can still win are simulated:

1. **Exact analytic sweep replay** — :func:`analytic_sweep_points` replays
   the float-operation sequence of :func:`repro.core.sweep.sweep_gemm`
   (operating point, roofline duration, energy accumulation, the NVML
   millijoule quantisation) without building a Simulator.  The replay is
   *bit-identical* to the simulated sweep for any :class:`GPUSpec`, so the
   kernel-level half of the paper (Table I/II ``P_best`` derivation, the
   advisor's cap states) costs **zero** simulations with no fidelity caveat.

2. **Vectorized cap-grid pre-pass** — :func:`grid_operating_points` runs the
   60-iteration frequency bisection for an entire cap grid as batched numpy,
   and :func:`estimate_configs` prices a whole configuration grid (makespan
   and energy per config) from the tile-kernel work model in a handful of
   array expressions.

3. **Bound-and-prune config planning** — :func:`plan_configs` turns the
   estimates into score *bounds* (estimate divided/multiplied by audited
   slack factors), resolves cache hits up front in one batched pass,
   simulates the most promising survivors first in amortizing chunks, and
   prunes every configuration whose most optimistic achievable score is
   *strictly* worse than an exactly-known incumbent.  Pruned configurations
   therefore cannot win or tie, so the returned winner and its
   :class:`~repro.core.efficiency.ConfigMetrics` are byte-identical to an
   exhaustive scan (enforced by tests and the ``check_regression.py
   --planner`` audit; see ``docs/performance.md`` for the bound derivation
   and the cases where pruning is disabled).

Objectives are pluggable (:data:`OBJECTIVES`): ``efficiency`` (Gflop/s/W,
alias ``gflops_per_w``) reproduces the paper; ``gflops``, ``energy``,
``makespan``, ``edp`` and ``ed2p`` are the Patrou et al. metric family
(arXiv 2505.21758) ready for the H100-class fleet entries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from repro.cluster.farm import FarmGPU, GPUFarm
from repro.core.capconfig import CapConfig, CapStates
from repro.core.efficiency import ConfigMetrics
from repro.core.sweep import SweepPoint, cap_grid
from repro.core.tradeoff import OperationSpec, run_operation
from repro.hardware.catalog import gpu_spec, platform_spec
from repro.hardware.cpu import SPIN_FACTOR
from repro.hardware.dvfs import PowerProfile, cpu_freq_at_cap
from repro.hardware.gpu import GPUDevice
from repro.hardware.specs import GPUSpec
from repro.kernels.gemm import GemmKernel
from repro.kernels.roofline import roofline_time
from repro.kernels.tile_kernels import (
    _CPU_FACTOR as _CPU_FACTOR_TABLE,
    CPU_TASK_OVERHEAD_S as CPU_OVERHEAD_S,
    TileOp,
)
from repro.sim import Simulator

# ------------------------------------------------------------------ objectives


@dataclass(frozen=True)
class Objective:
    """One pluggable figure of merit over a finished run.

    ``score`` evaluates exact :class:`ConfigMetrics` with the *same float
    expressions* the advisor uses, so planner and service rank identically.
    ``optimistic`` maps lower bounds ``(t_lo, e_lo)`` on makespan and energy
    (plus the operation's total flops) to the best score any run respecting
    those bounds could achieve — the quantity pruning compares against an
    exact incumbent.  ``sweep_score`` scores one kernel-sweep point.
    """

    name: str
    maximise: bool
    score: Callable[[ConfigMetrics], float]
    optimistic: Callable[[float, float, float], float]
    sweep_score: Callable[[SweepPoint], float]


OBJECTIVES: dict[str, Objective] = {
    obj.name: obj
    for obj in (
        Objective(
            "efficiency", True,
            lambda m: m.efficiency,
            lambda t_lo, e_lo, flops: flops / e_lo / 1e9,
            lambda p: p.efficiency,
        ),
        Objective(
            "gflops", True,
            lambda m: m.gflops,
            lambda t_lo, e_lo, flops: flops / t_lo / 1e9,
            lambda p: p.gflops,
        ),
        Objective(
            "energy", False,
            lambda m: m.energy_j,
            lambda t_lo, e_lo, flops: e_lo,
            lambda p: p.energy_j,
        ),
        Objective(
            "makespan", False,
            lambda m: m.makespan_s,
            lambda t_lo, e_lo, flops: t_lo,
            lambda p: p.time_s,
        ),
        Objective(
            "edp", False,
            lambda m: m.energy_j * m.makespan_s,
            lambda t_lo, e_lo, flops: e_lo * t_lo,
            lambda p: p.energy_j * p.time_s,
        ),
        Objective(
            "ed2p", False,
            lambda m: m.energy_j * m.makespan_s ** 2,
            lambda t_lo, e_lo, flops: e_lo * t_lo ** 2,
            lambda p: p.energy_j * p.time_s ** 2,
        ),
    )
}

#: The paper's figure of merit under its other common name.
OBJECTIVES["gflops_per_w"] = OBJECTIVES["efficiency"]


def get_objective(name: str) -> Objective:
    try:
        return OBJECTIVES[name]
    except KeyError:
        raise ValueError(
            f"unknown objective {name!r}; have {sorted(OBJECTIVES)}"
        ) from None


def _rank(obj: Objective, score: float) -> float:
    """Map a score to please-minimise order (ties compare equal)."""
    return -score if obj.maximise else score


def best_sweep_point(points: Sequence[SweepPoint], objective: str = "efficiency") -> SweepPoint:
    """The sweep point optimising ``objective`` (first wins on exact ties)."""
    if not points:
        raise ValueError("empty sweep")
    obj = get_objective(objective)
    if obj.maximise:
        return max(points, key=obj.sweep_score)
    return min(points, key=obj.sweep_score)


# ------------------------------------------------- exact analytic sweep replay


def analytic_sweep_points(
    model: str | GPUSpec,
    n: int,
    precision: str,
    step_pct: float = 2.0,
    m: Optional[int] = None,
    k: Optional[int] = None,
) -> list[SweepPoint]:
    """Replay a :func:`~repro.core.sweep.sweep_gemm` without a Simulator.

    The simulated sweep advances time only while the kernel runs, so the
    device's energy integral is a running sum of ``busy_power * elapsed``
    terms and the NVML counter quantises it to integer millijoules before
    each point's subtraction.  Replaying exactly that float-operation
    sequence — same operating point, same roofline duration, same
    ``t0 + duration`` event timestamp, same ``int(round(E * 1000))``
    quantisation — produces **bit-identical** :class:`SweepPoint` lists
    (asserted by tests for every catalog model and for ad-hoc specs).
    """
    spec = gpu_spec(model) if isinstance(model, str) else model
    kernel = GemmKernel(m or n, n, k or n, precision)
    profile = spec.power_profiles[precision]
    act = kernel.activity(spec)
    util = kernel.utilization(spec)
    now = 0.0        # Simulator clock
    energy = 0.0     # GPUDevice energy integral (J)
    points: list[SweepPoint] = []
    for cap in cap_grid(spec, step_pct):
        f = profile.freq_at_cap(cap, act)
        busy_w = profile.power(f, act)
        gflops = spec.peak_gflops[precision] * util * profile.perf_scale(f)
        duration = roofline_time(
            kernel.flops, kernel.traffic_bytes, gflops,
            spec.mem_bw_gbs, spec.launch_overhead_s,
        )
        e0_mj = int(round(energy * 1000))
        t0 = now
        now = t0 + duration          # the end_kernel event timestamp
        elapsed = now - t0
        energy = energy + busy_w * elapsed
        energy_j = (int(round(energy * 1000)) - e0_mj) / 1000.0
        points.append(
            SweepPoint(
                cap_w=cap,
                cap_pct_tdp=100.0 * cap / spec.tdp_w,
                time_s=elapsed,
                gflops=kernel.flops / elapsed / 1e9,
                power_w=energy_j / elapsed,
                energy_j=energy_j,
            )
        )
    return points


# ------------------------------------------------ vectorized cap-grid pre-pass


def grid_operating_points(
    profile: PowerProfile,
    caps_w: Sequence[float],
    activity: float = 1.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(freq, perf_scale, power)`` arrays for a whole cap grid at once.

    The batched bisection mirrors :meth:`PowerProfile.freq_at_cap` operation
    for operation (same midpoint expression, same 60 iterations), so the
    arrays match a scalar loop to the last bit while evaluating thousands of
    caps in a handful of numpy calls.
    """
    caps = np.asarray(caps_w, dtype=float)

    def power(f: np.ndarray) -> np.ndarray:
        return profile.s0 + profile.s1 * f + activity * profile.d * f ** profile.gamma

    lo = np.full_like(caps, profile.f_min)
    hi = np.ones_like(caps)
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        fits = power(mid) <= caps
        lo = np.where(fits, mid, lo)
        hi = np.where(fits, hi, mid)
    f = lo
    f = np.where(power(np.full_like(caps, profile.f_min)) >= caps, profile.f_min, f)
    f = np.where(power(np.ones_like(caps)) <= caps, 1.0, f)
    return f, f ** profile.beta, power(f)


def analytic_cap_curve(
    model: str | GPUSpec,
    n: int,
    precision: str,
    step_pct: float = 2.0,
) -> dict[str, np.ndarray]:
    """Whole-grid analytic sweep evaluation as batched numpy arrays.

    The estimate ignores only the NVML millijoule quantisation, so it tracks
    the exact replay to ~1e-6 relative — use :func:`analytic_sweep_points`
    when byte-identity with the simulated sweep matters, and this when
    evaluating thousands of (cap, objective) points per second does.
    """
    spec = gpu_spec(model) if isinstance(model, str) else model
    kernel = GemmKernel.square(n, precision)
    profile = spec.power_profiles[precision]
    act = kernel.activity(spec)
    caps = np.asarray(cap_grid(spec, step_pct))
    f, perf, power = grid_operating_points(profile, caps, act)
    gflops_rate = spec.peak_gflops[precision] * kernel.utilization(spec) * perf
    t_compute = kernel.flops / (gflops_rate * 1e9)
    t_memory = kernel.traffic_bytes / (spec.mem_bw_gbs * 1e9)
    time_s = np.maximum(t_compute, t_memory) + spec.launch_overhead_s
    gflops = kernel.flops / time_s / 1e9
    return {
        "cap_w": caps,
        "freq": f,
        "perf_scale": perf,
        "power_w": power,
        "time_s": time_s,
        "gflops": gflops,
        "efficiency": gflops / power,
    }


# ------------------------------------------------------- config-grid estimates

#: Audited slack factors between the analytic work-model estimate and the
#: simulated ground truth.  The estimator ignores data transfers and
#: scheduler imperfection (which slow the real run) and execution noise (a
#: per-task lognormal with sigma 0.015, either direction), so the truth can
#: land on either side of the estimate; bound-soundness tests and the bench
#: audit check ``estimate/slack <= simulated <= estimate * slack`` on every
#: replayed configuration.  Measured sim/estimate spreads across the
#: fig3-small, fig3-tiny and H100 3^4-enumerate grids: makespan in
#: [0.93, 1.66] (the high end is small dependency-bound grids), energy in
#: [0.97, 1.14] — both slacks keep >20 % margin beyond the observed worst.
MAKESPAN_SLACK = 2.0
ENERGY_SLACK = 1.4

_STATE_INDEX = {"H": 0, "B": 1, "L": 2}


class OperationModel:
    """Analytic work model of one (platform, operation, CPU caps) instance.

    Prices every configuration of a grid without simulating: per-kind tile
    durations and busy powers at each of the three cap states come from the
    same :class:`TileOp` ground-truth models the runtime uses, the task
    counts from the operation's real task graph, and the grid evaluation is
    a few numpy gathers over the (config, gpu) state matrix.
    """

    def __init__(
        self,
        platform: str,
        spec: OperationSpec,
        states: CapStates,
        cpu_caps: Optional[Mapping[int, float]] = None,
    ) -> None:
        pspec = platform_spec(platform)
        self.gpu_spec = gpu_spec(pspec.gpu_model)
        self.n_gpus = pspec.n_gpus
        graph = spec.build_graph()
        self.counts = graph.counts_by_kind()
        self.total_flops = graph.total_flops()
        self.ops = {kind: TileOp(kind, spec.nb, spec.precision) for kind in self.counts}
        self._graph = graph

        # Per-kind (duration, busy power) at each cap state, from a scratch
        # device per distinct cap (the same analytic models the runtime's
        # ground truth uses).
        state_caps = [states.h_w, states.b_w, states.l_w]
        self._t_state: dict[str, np.ndarray] = {}
        self._p_state: dict[str, np.ndarray] = {}
        devices: dict[float, GPUDevice] = {}
        for cap in state_caps:
            if cap not in devices:
                dev = GPUDevice(self.gpu_spec, 0, Simulator())
                dev.set_power_limit(cap)
                devices[cap] = dev
        for kind, op in self.ops.items():
            if not op.runs_on_gpu:
                continue
            self._t_state[kind] = np.array(
                [op.time_on_gpu(devices[cap]) for cap in state_caps]
            )
            self._p_state[kind] = np.array(
                [op.power_on_gpu(devices[cap]) for cap in state_caps]
            )

        # CPU side: per-package frequency under the RAPL caps, worker count
        # (one core per GPU drives its stream; the rest run CPU tasks), and
        # the busy-wait base power every package pays for the whole run.
        cpu_specs = pspec.cpu_specs()
        n_cores = sum(c.n_cores for c in cpu_specs)
        self.n_cpu_workers = max(1, n_cores - self.n_gpus)
        caps = dict(cpu_caps or {})
        base_cpu_w = 0.0
        total_rate = 0.0
        self._cpu_dyn_w = 0.0
        for i, cspec in enumerate(cpu_specs):
            freq = 1.0
            if i in caps and cspec.supports_capping:
                freq = cpu_freq_at_cap(
                    caps[i], cspec.idle_w, cspec.tdp_w, cspec.f_min
                )
            dyn = cspec.per_core_w * freq ** 3
            base_cpu_w += cspec.idle_w + cspec.n_cores * SPIN_FACTOR * dyn
            rate = cspec.core_gflops[spec.precision] * freq
            total_rate += cspec.n_cores * rate
            self._cpu_dyn_w += cspec.n_cores * (1.0 - SPIN_FACTOR) * dyn
        self._cpu_core_gflops = total_rate / max(1, n_cores)
        self._cpu_dyn_w /= max(1, n_cores)  # busy increment of a mean core

        #: Node power with every worker spinning and both device classes idle
        #: — paid for the entire makespan regardless of configuration.
        self.base_power_w = base_cpu_w + self.n_gpus * self.gpu_spec.idle_w

        # Critical-path time with every task on its fastest device, given the
        # fastest GPU cap state present in a configuration (dependency-bound
        # operations — POTRF panels — run far above the area bound, and this
        # term is what keeps their estimate honest).  Only the *fastest*
        # state matters, so three path computations cover every config.
        self._cpath_by_state: list[float] = []
        for state_i in range(3):
            def weight(task, state_i=state_i):
                op = self.ops[task.op.kind]
                cpu_t = (
                    op.flops
                    / (self._cpu_core_gflops * _CPU_FACTOR_TABLE[op.kind] * 1e9)
                    + CPU_OVERHEAD_S
                )
                if not op.runs_on_gpu:
                    return cpu_t
                return min(float(self._t_state[op.kind][state_i]), cpu_t)

            self._cpath_by_state.append(graph.critical_path(weight)[0])

    def estimate(self, configs: Sequence[CapConfig]) -> dict[str, tuple[float, float]]:
        """``{letters: (makespan_est_s, energy_est_j)}`` for a config grid."""
        s = np.array(
            [[_STATE_INDEX[ch] for ch in c.letters] for c in configs], dtype=int
        )
        n_configs = len(configs)
        t_gpu = np.zeros(n_configs)
        e_gpu = np.zeros(n_configs)
        t_cpu_work = 0.0
        e_cpu_work = 0.0
        idle = self.gpu_spec.idle_w
        for kind, count in self.counts.items():
            op = self.ops[kind]
            if op.runs_on_gpu:
                rates = (1.0 / self._t_state[kind])[s]        # (configs, gpus)
                total_rate = rates.sum(axis=1)
                t_gpu += count / total_rate
                e_gpu += (count / total_rate) * (self._p_state[kind] - idle)[s].sum(axis=1)
            else:
                per_core = (
                    op.flops
                    / (self._cpu_core_gflops * _CPU_FACTOR_TABLE[kind] * 1e9)
                    + CPU_OVERHEAD_S
                )
                t_cpu_work += count * per_core / self.n_cpu_workers
                e_cpu_work += count * per_core * self._cpu_dyn_w
        cpath = np.array(
            [self._cpath_by_state[int(s[i].min())] for i in range(n_configs)]
        )
        makespan = np.maximum(np.maximum(t_gpu, t_cpu_work), cpath)
        energy = makespan * self.base_power_w + e_gpu + e_cpu_work
        return {
            c.letters: (float(makespan[i]), float(energy[i]))
            for i, c in enumerate(configs)
        }


# --------------------------------------------------------- plan-and-prune scan


@dataclass(frozen=True)
class PlanReport:
    """What the planner did to a configuration grid (for benches and audits)."""

    objective: str
    n_configs: int
    n_cache_hits: int
    n_simulated: int
    n_pruned: int
    pruned: tuple[str, ...]
    #: ``letters -> (makespan_est_s, energy_est_j)``; empty when pruning was
    #: disabled (no estimates were computed).
    estimates: Mapping[str, tuple[float, float]]


@dataclass(frozen=True)
class PlanResult:
    """Winner of a planned grid scan plus everything evaluated on the way."""

    winner: str
    metrics: ConfigMetrics
    evaluated: Mapping[str, ConfigMetrics]
    report: PlanReport


def plan_configs(
    platform: str,
    spec: OperationSpec,
    configs: Sequence[CapConfig],
    states: CapStates,
    objective: str = "efficiency",
    scheduler: str = "dmdas",
    seed: int = 0,
    cpu_caps: Optional[Mapping[int, float]] = None,
    jobs: int = 1,
    cache=None,
    prune: bool = True,
    chunk_size: Optional[int] = None,
) -> PlanResult:
    """Find the grid's best configuration, simulating only possible winners.

    Semantics are those of the exhaustive scan: evaluate every configuration
    with :func:`~repro.core.tradeoff.run_operation` and keep the best score,
    ties breaking toward the earlier grid position.  The planner skips a
    configuration only when its *most optimistic* score bound is strictly
    worse than an exactly-known incumbent, so the returned winner and
    metrics are byte-identical to the exhaustive scan's (a pruned
    configuration can neither win nor tie).  With ``prune=False`` — or when
    the platform is no catalog platform, so no analytic model exists — every
    configuration is simulated.

    Cache hits are resolved up front in one batched :meth:`load_many` pass
    and count as exact incumbents immediately; misses are simulated
    most-promising-first in chunks of ``chunk_size`` (default: ``jobs``,
    at least 2) through ``parallel_starmap``.
    """
    from repro.experiments.parallel import parallel_starmap

    obj = get_objective(objective)
    configs = list(configs)
    if not configs:
        raise ValueError("empty configuration grid")
    letters = [c.letters for c in configs]
    if len(set(letters)) != len(letters):
        raise ValueError("duplicate configurations in grid")
    grid_index = {lt: i for i, lt in enumerate(letters)}
    evaluated: dict[str, ConfigMetrics] = {}

    # ---- batched cache pre-resolution (exact incumbents for free)
    n_cache_hits = 0
    if cache is not None:
        keys = {}
        for c in configs:
            key = cache.key_for(
                "run_operation",
                (platform, spec, c, states, scheduler, seed, cpu_caps, None),
            )
            if key is not None:
                keys[c.letters] = key
        if keys:
            if hasattr(cache, "load_many"):
                loaded = cache.load_many(list(keys.values()))
            else:
                loaded = {key: cache.load(key) for key in keys.values()}
            for config_letters, key in keys.items():
                hit, value = loaded[key]
                if hit:
                    evaluated[config_letters] = value
        n_cache_hits = len(evaluated)

    # ---- analytic estimates and optimistic score bounds
    estimates: dict[str, tuple[float, float]] = {}
    optimistic: dict[str, float] = {}
    if prune:
        try:
            model = OperationModel(platform, spec, states, cpu_caps)
        except KeyError:
            prune = False  # ad-hoc platform: no analytic model, no pruning
        else:
            estimates = model.estimate(configs)
            for c_letters, (t_est, e_est) in estimates.items():
                optimistic[c_letters] = obj.optimistic(
                    t_est / MAKESPAN_SLACK, e_est / ENERGY_SLACK, model.total_flops
                )

    def exact_rank(config_letters: str) -> tuple[float, int]:
        return (
            _rank(obj, obj.score(evaluated[config_letters])),
            grid_index[config_letters],
        )

    incumbent: Optional[tuple[float, int]] = None
    for config_letters in evaluated:
        rank = exact_rank(config_letters)
        if incumbent is None or rank < incumbent:
            incumbent = rank

    remaining = [c for c in configs if c.letters not in evaluated]
    if prune:
        remaining.sort(
            key=lambda c: (_rank(obj, optimistic[c.letters]), grid_index[c.letters])
        )
    pruned: list[str] = []
    n_simulated = 0
    chunk = chunk_size if chunk_size else max(2, int(jobs or 1))
    while remaining:
        if prune and incumbent is not None:
            survivors = []
            for c in remaining:
                # Strictly worse than an exact score even in the best case:
                # cannot win, cannot tie — safe to skip.
                if _rank(obj, optimistic[c.letters]) > incumbent[0]:
                    pruned.append(c.letters)
                else:
                    survivors.append(c)
            remaining = survivors
            if not remaining:
                break
        batch, remaining = remaining[:chunk], remaining[chunk:]
        results = parallel_starmap(
            run_operation,
            [
                (platform, spec, c, states, scheduler, seed, cpu_caps)
                for c in batch
            ],
            jobs=jobs,
            cache=cache,
        )
        for c, metrics in zip(batch, results):
            evaluated[c.letters] = metrics
            n_simulated += 1
            rank = exact_rank(c.letters)
            if incumbent is None or rank < incumbent:
                incumbent = rank

    winner = min(evaluated, key=exact_rank)
    return PlanResult(
        winner=winner,
        metrics=evaluated[winner],
        evaluated=dict(evaluated),
        report=PlanReport(
            objective=obj.name,
            n_configs=len(configs),
            n_cache_hits=n_cache_hits,
            n_simulated=n_simulated,
            n_pruned=len(pruned),
            pruned=tuple(pruned),
            estimates=estimates,
        ),
    )


def audit_plan(
    result: PlanResult,
    platform: str,
    spec: OperationSpec,
    states: CapStates,
    scheduler: str = "dmdas",
    seed: int = 0,
    cpu_caps: Optional[Mapping[int, float]] = None,
    sample: int = 5,
    rng_seed: int = 0,
    cache=None,
) -> dict:
    """Replay a random sample of pruned configurations against the winner.

    Returns an audit document: for every replayed configuration the exact
    simulation must (a) not beat the winner — else pruning was unsound and
    ``beaten_by`` names the offender — and (b) land inside the slack bounds
    around the analytic estimate (``bounds_sound``).  This is what the
    ``check_regression.py --planner`` gate consumes.
    """
    obj = get_objective(result.report.objective)
    pruned = list(result.report.pruned)
    rng = random.Random(rng_seed)
    sampled = pruned if len(pruned) <= sample else rng.sample(pruned, sample)
    winner_rank = _rank(obj, obj.score(result.metrics))
    bounds_sound = True
    beaten_by: list[str] = []
    checked: list[dict] = []
    for config_letters in sampled:
        metrics = run_operation(
            platform, spec, CapConfig(config_letters), states,
            scheduler=scheduler, seed=seed, cpu_caps=cpu_caps, cache=cache,
        )
        t_est, e_est = result.report.estimates[config_letters]
        t_ok = t_est / MAKESPAN_SLACK <= metrics.makespan_s <= t_est * MAKESPAN_SLACK
        e_ok = e_est / ENERGY_SLACK <= metrics.energy_j <= e_est * ENERGY_SLACK
        bounds_sound = bounds_sound and t_ok and e_ok
        if _rank(obj, obj.score(metrics)) < winner_rank:
            beaten_by.append(config_letters)
        checked.append(
            {
                "config": config_letters,
                "makespan_est_s": t_est,
                "makespan_s": metrics.makespan_s,
                "energy_est_j": e_est,
                "energy_j": metrics.energy_j,
                "bounds_ok": bool(t_ok and e_ok),
            }
        )
    return {
        "n_pruned": len(pruned),
        "n_sampled": len(sampled),
        "bounds_sound": bounds_sound,
        "beaten_by": beaten_by,
        "checked": checked,
    }


# ------------------------------------------------------ analytic ladder scans


def best_ladder_under_budget(
    platform: str,
    kernel: GemmKernel,
    states: CapStates,
    budget_w: float,
    configs: Optional[Sequence[CapConfig]] = None,
) -> tuple[CapConfig, list[float]]:
    """Best feasible ladder configuration under a watt budget (analytic).

    The governor's static-best scan: walk the grid in order, keep
    configurations whose cap sum fits the budget, rank by the analytic farm
    efficiency of the phase kernel, ties breaking toward the earlier grid
    position.  Entirely model-evaluated (no Simulator runs) and
    float-for-float identical to the historical in-line scan in
    ``repro.govern.run`` — which now delegates here.
    """
    pspec = platform_spec(platform)
    if configs is None:
        from repro.core.capconfig import standard_configs

        configs = standard_configs(pspec.n_gpus)
    farm = GPUFarm(
        [FarmGPU(pspec.gpu_model, kernel) for _ in range(pspec.n_gpus)]
    )
    best: Optional[tuple[CapConfig, list[float]]] = None
    best_eff = -1.0
    for config in configs:
        watts = config.watts(states)
        if sum(watts) > budget_w + 1e-6:
            continue
        eff = farm.total_efficiency(watts)
        if eff > best_eff:
            best, best_eff = (config, watts), eff
    if best is None:
        raise ValueError(
            f"budget {budget_w:.0f} W below the platform floor "
            f"{farm.min_budget():.0f} W"
        )
    return best
