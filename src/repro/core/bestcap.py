"""``P_best`` selection (paper Tables I and II).

The best cap is "the highest point from the energy efficiency data set" of a
GEMM sweep (Sec. IV-C).  Table I picks it over several matrix sizes per GPU
model; Table II applies the same procedure at the tile size used by each
task-based operation, since GEMM tiles dominate both operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.hardware.catalog import gpu_spec
from repro.core.sweep import SweepPoint, sweep_gemm


@dataclass(frozen=True)
class BestCap:
    """Best-efficiency cap for one (GPU, precision) pair."""

    model: str
    precision: str
    matrix_size: int
    cap_w: float
    cap_pct_tdp: float
    efficiency: float
    efficiency_saving_pct: float
    perf_ratio: float


def best_cap_for_gemm(
    model: str,
    precision: str,
    sizes: Sequence[int],
    step_pct: float = 2.0,
    cache: Optional["ExperimentCache"] = None,
    objective: str = "efficiency",
) -> BestCap:
    """Scan matrix sizes, sweep caps for each, keep the global best.

    Reproduces the Table I procedure: the best efficiency usually lands on
    the largest size (better occupancy), with the cap strictly below TDP.
    ``objective`` selects the figure of merit from the planner's pluggable
    registry (``efficiency``/``gflops_per_w`` reproduces the paper; ``edp``,
    ``ed2p``, ``energy``, ``makespan`` and ``gflops`` are the Patrou et al.
    family); the sweeps themselves are objective-independent and shared
    through the cache.
    """
    from repro.core.planner import best_sweep_point, get_objective

    if not sizes:
        raise ValueError("need at least one matrix size")
    obj = get_objective(objective)
    best: tuple[SweepPoint, SweepPoint, int] | None = None  # (point, default, n)
    for n in sizes:
        points = sweep_gemm(model, n, precision, step_pct=step_pct, cache=cache)
        cand = best_sweep_point(points, objective)
        default = points[-1]  # the no-cap (TDP) point
        if best is None or (
            obj.sweep_score(cand) > obj.sweep_score(best[0])
            if obj.maximise
            else obj.sweep_score(cand) < obj.sweep_score(best[0])
        ):
            best = (cand, default, n)
    point, default, n = best
    return BestCap(
        model=model,
        precision=precision,
        matrix_size=n,
        cap_w=point.cap_w,
        cap_pct_tdp=point.cap_pct_tdp,
        efficiency=point.efficiency,
        efficiency_saving_pct=100.0 * (point.efficiency / default.efficiency - 1.0),
        perf_ratio=point.gflops / default.gflops,
    )


def best_cap_watts(
    model: str,
    precision: str,
    nb: int,
    step_pct: float = 2.0,
    cache: Optional["ExperimentCache"] = None,
    objective: str = "efficiency",
) -> float:
    """Table II ``P_best``: best cap for a single tile-sized GEMM."""
    from repro.core.planner import best_sweep_point

    points = sweep_gemm(model, nb, precision, step_pct=step_pct, cache=cache)
    return best_sweep_point(points, objective).cap_w


def state_watts(model: str) -> tuple[float, float]:
    """(P_min, P_max) of a GPU model — the L and H states."""
    spec = gpu_spec(model)
    return spec.cap_min_w, spec.cap_max_w
