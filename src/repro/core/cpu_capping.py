"""CPU power capping study (paper Sec. V-C, Fig. 6).

The paper caps the *second* CPU package of 24-Intel-2-V100 at 48 % of its
TDP (60 W of 125 W) — below that the node became unstable — and finds that
energy efficiency improves across every configuration with no performance
loss, because the scheduler rarely puts critical tasks on the CPUs while the
busy-waiting worker cores keep drawing power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.capconfig import CapConfig, CapStates
from repro.core.efficiency import ConfigMetrics
from repro.core.tradeoff import OperationSpec, run_operation

#: The paper's CPU cap: package 1 at 48 % of the Xeon's 125 W TDP.
PAPER_CPU_CAP = {1: 60.0}


@dataclass(frozen=True)
class CPUCapComparison:
    """One configuration measured with and without the CPU cap."""

    config: str
    without_cap: ConfigMetrics
    with_cap: ConfigMetrics

    @property
    def efficiency_improvement_pct(self) -> float:
        return (self.with_cap.efficiency / self.without_cap.efficiency - 1.0) * 100.0

    @property
    def perf_impact_pct(self) -> float:
        return (self.with_cap.gflops / self.without_cap.gflops - 1.0) * 100.0


def compare_cpu_capping(
    platform: str,
    spec: OperationSpec,
    configs: Sequence[CapConfig],
    states: CapStates,
    cpu_caps: Optional[dict[int, float]] = None,
    scheduler: str = "dmdas",
    seed: int = 0,
    cache: Optional["ExperimentCache"] = None,
) -> list[CPUCapComparison]:
    """Fig. 6: for each GPU cap config, run with and without the CPU cap."""
    caps = dict(PAPER_CPU_CAP if cpu_caps is None else cpu_caps)
    out = []
    for config in configs:
        base = run_operation(
            platform, spec, config, states,
            scheduler=scheduler, seed=seed, cache=cache,
        )
        capped = run_operation(
            platform, spec, config, states,
            scheduler=scheduler, seed=seed, cpu_caps=caps, cache=cache,
        )
        out.append(CPUCapComparison(config.letters, base, capped))
    return out
