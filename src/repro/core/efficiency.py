"""Metrics: performance, energy, efficiency, and paper-style deltas.

Sign conventions follow the paper (Sec. V): for performance a positive
percentage is a speedup; for energy a positive percentage is a *saving*.
Efficiency is Gflop/s/W, which equals Gflop per Joule.
"""

from __future__ import annotations

from dataclasses import dataclass


def pct_change(new: float, base: float) -> float:
    """Percentage change of ``new`` relative to ``base``."""
    if base == 0:
        raise ZeroDivisionError("baseline is zero")
    return (new / base - 1.0) * 100.0


@dataclass(frozen=True)
class ConfigMetrics:
    """Metrics of one operation run under one cap configuration."""

    config: str
    makespan_s: float
    total_flops: float
    energy_j: float
    device_energy_j: dict[str, float]
    gpu_task_fraction: float = 1.0

    @property
    def gflops(self) -> float:
        return self.total_flops / self.makespan_s / 1e9

    @property
    def efficiency(self) -> float:
        """Gflop/s/W (== Gflop/J)."""
        return self.total_flops / self.energy_j / 1e9

    # ------------------------------------------------- paper-style deltas

    def perf_delta_pct(self, base: "ConfigMetrics") -> float:
        """Positive = speedup over the baseline config."""
        return pct_change(self.gflops, base.gflops)

    def energy_saving_pct(self, base: "ConfigMetrics") -> float:
        """Positive = less energy than the baseline config."""
        return -pct_change(self.energy_j, base.energy_j)

    def efficiency_delta_pct(self, base: "ConfigMetrics") -> float:
        return pct_change(self.efficiency, base.efficiency)

    @property
    def cpu_energy_j(self) -> float:
        return sum(v for k, v in self.device_energy_j.items() if k.startswith("cpu"))

    @property
    def gpu_energy_j(self) -> float:
        return sum(v for k, v in self.device_energy_j.items() if k.startswith("gpu"))
