"""EXTENSION: dynamic per-GPU capping *during* a task-based run.

The paper's future work asks about "dynamic power capping and its
interaction with scheduling decisions".  :class:`RuntimeCapGovernor` ticks
on the simulation clock while the runtime executes a graph: every period it
measures each GPU's achieved efficiency over the window (flops retired by
its worker / energy drawn by the device) and hill-climbs that GPU's cap
independently.  The scheduler keeps up because the runtime's EWMA history
model re-estimates kernel durations from recent samples — use
``RuntimeSystem(..., ewma_alpha=0.3)`` together with this governor.

Start the governor *before* ``runtime.run``; it re-arms itself on the event
heap until the run drains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.node import Node
from repro.runtime.engine import RuntimeSystem
from repro.runtime.worker import GPUWorker
from repro.sim import Simulator


@dataclass
class _GPUState:
    direction: float = -1.0
    smooth_eff: float | None = None
    best_eff: float = 0.0
    best_cap: float = 0.0
    last_flops: float = 0.0
    last_energy: float = 0.0


@dataclass
class RuntimeCapGovernor:
    """Per-GPU online hill-climbing governor over a running RuntimeSystem."""

    node: Node
    runtime: RuntimeSystem
    period_s: float = 0.4
    step_w: float = 20.0
    degrade_tolerance: float = 0.03
    smoothing: float = 0.5
    history: list[tuple[float, list[float]]] = field(default_factory=list)
    _states: dict[int, _GPUState] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._sim: Simulator = self.runtime.sim
        self._gpu_workers = {
            w.gpu.index: w for w in self.runtime.workers if isinstance(w, GPUWorker)
        }
        for gpu in self.node.gpus:
            self._states[gpu.index] = _GPUState()

    def start(self) -> None:
        """Arm the first tick; call immediately before ``runtime.run``."""
        for gpu in self.node.gpus:
            state = self._states[gpu.index]
            state.last_flops = self._gpu_workers[gpu.index].flops_done
            state.last_energy = gpu.energy_j()
            state.smooth_eff = None
            state.best_cap = gpu.power_limit_w
        self._sim.schedule(self.period_s, self._tick)

    def _tick(self) -> None:
        caps = []
        for gpu in self.node.gpus:
            state = self._states[gpu.index]
            flops = self._gpu_workers[gpu.index].flops_done
            energy = gpu.energy_j()
            d_flops = flops - state.last_flops
            d_energy = energy - state.last_energy
            state.last_flops, state.last_energy = flops, energy
            if d_flops > 0 and d_energy > 0:
                raw = d_flops / d_energy
                eff = (
                    raw if state.smooth_eff is None
                    else (1 - self.smoothing) * state.smooth_eff + self.smoothing * raw
                )
                state.smooth_eff = eff
                if eff > state.best_eff:
                    state.best_eff = eff
                    state.best_cap = gpu.power_limit_w
                spec = gpu.spec
                if eff < state.best_eff * (1.0 - self.degrade_tolerance):
                    # Fell clearly below the best seen: jump back there and
                    # probe the other direction next.
                    state.direction = -state.direction
                    cap = state.best_cap
                else:
                    cap = gpu.power_limit_w + state.direction * self.step_w
                cap = min(spec.cap_max_w, max(spec.cap_min_w, cap))
                if cap != gpu.power_limit_w:
                    gpu.set_power_limit(cap)
            caps.append(gpu.power_limit_w)
        self.history.append((self._sim.now, caps))
        if self.runtime.pending_tasks > 0:
            self._sim.schedule(self.period_s, self._tick)

    def final_caps(self) -> list[float]:
        return [gpu.power_limit_w for gpu in self.node.gpus]
