"""EXTENSION: dynamic per-GPU capping *during* a task-based run.

The paper's future work asks about "dynamic power capping and its
interaction with scheduling decisions".  :class:`RuntimeCapGovernor` ticks
on the simulation clock while the runtime executes a graph: every period it
measures each GPU's achieved efficiency over the window (flops retired by
its worker / energy drawn by the device) and hill-climbs that GPU's cap
independently.  The scheduler keeps up because the runtime's EWMA history
model re-estimates kernel durations from recent samples — use
``RuntimeSystem(..., ewma_alpha=0.3)`` together with this governor.

Start the governor *before* ``runtime.run``; it re-arms itself on the event
heap until the run drains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hardware.node import Node
from repro.runtime.engine import RuntimeSystem
from repro.runtime.worker import GPUWorker
from repro.sim import Simulator
from repro.sim.engine import EventHandle


class PeriodicController:
    """Sim-clock tick loop shared by the online cap governors.

    Subclasses implement :meth:`on_tick`; the base class owns the re-arm
    discipline: ticks ride cancellable event handles, re-arm only while the
    bound runtime has pending tasks, and can be cancelled at the exact
    completion event (via :meth:`stop`) so a pending tick never pads the
    measured makespan — the same rule :class:`repro.faults.recovery.
    RecoveryManager` applies to its probe/backoff events.  :meth:`resume`
    re-arms the chain for a subsequent phase of a multi-graph scenario.
    """

    def __init__(self, runtime: RuntimeSystem, period_s: float) -> None:
        if period_s <= 0:
            raise ValueError(f"tick period must be positive, got {period_s}")
        self.runtime = runtime
        self.sim: Simulator = runtime.sim
        self.period_s = period_s
        self.last_tick_t: float = self.sim.now
        self.n_ticks = 0
        self._tick_handle: Optional[EventHandle] = None

    def start(self) -> None:
        """Arm the first tick; call immediately before ``runtime.run``."""
        self._arm()

    def resume(self) -> None:
        """Re-arm for the next phase (no-op if a tick is already pending)."""
        if self._tick_handle is None:
            self._arm()

    def stop(self) -> None:
        """Cancel the pending tick (safe at the run-completion event)."""
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None

    def on_tick(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _arm(self) -> None:
        self._tick_handle = self.sim.schedule(self.period_s, self._tick)

    def _tick(self) -> None:
        self._tick_handle = None
        if self.runtime.pending_tasks <= 0:
            return
        self.last_tick_t = self.sim.now
        self.n_ticks += 1
        self.on_tick()
        if self.runtime.pending_tasks > 0:
            self._arm()


@dataclass
class _GPUState:
    direction: float = -1.0
    smooth_eff: float | None = None
    best_eff: float = 0.0
    best_cap: float = 0.0
    last_flops: float = 0.0
    last_energy: float = 0.0


class RuntimeCapGovernor(PeriodicController):
    """Per-GPU online hill-climbing governor over a running RuntimeSystem."""

    def __init__(
        self,
        node: Node,
        runtime: RuntimeSystem,
        period_s: float = 0.4,
        step_w: float = 20.0,
        degrade_tolerance: float = 0.03,
        smoothing: float = 0.5,
    ) -> None:
        super().__init__(runtime, period_s)
        self.node = node
        self.step_w = step_w
        self.degrade_tolerance = degrade_tolerance
        self.smoothing = smoothing
        self.history: list[tuple[float, list[float]]] = []
        self._sim: Simulator = runtime.sim
        self._gpu_workers = {
            w.gpu.index: w for w in runtime.workers if isinstance(w, GPUWorker)
        }
        self._states: dict[int, _GPUState] = {
            gpu.index: _GPUState() for gpu in node.gpus
        }

    def start(self) -> None:
        """Arm the first tick; call immediately before ``runtime.run``."""
        for gpu in self.node.gpus:
            state = self._states[gpu.index]
            state.last_flops = self._gpu_workers[gpu.index].flops_done
            state.last_energy = gpu.energy_j()
            state.smooth_eff = None
            state.best_cap = gpu.power_limit_w
        super().start()

    def on_tick(self) -> None:
        caps = []
        for gpu in self.node.gpus:
            state = self._states[gpu.index]
            flops = self._gpu_workers[gpu.index].flops_done
            energy = gpu.energy_j()
            d_flops = flops - state.last_flops
            d_energy = energy - state.last_energy
            state.last_flops, state.last_energy = flops, energy
            if d_flops > 0 and d_energy > 0:
                raw = d_flops / d_energy
                eff = (
                    raw if state.smooth_eff is None
                    else (1 - self.smoothing) * state.smooth_eff + self.smoothing * raw
                )
                state.smooth_eff = eff
                if eff > state.best_eff:
                    state.best_eff = eff
                    state.best_cap = gpu.power_limit_w
                spec = gpu.spec
                if eff < state.best_eff * (1.0 - self.degrade_tolerance):
                    # Fell clearly below the best seen: jump back there and
                    # probe the other direction next.
                    state.direction = -state.direction
                    cap = state.best_cap
                else:
                    cap = gpu.power_limit_w + state.direction * self.step_w
                cap = min(spec.cap_max_w, max(spec.cap_min_w, cap))
                if cap != gpu.power_limit_w:
                    gpu.set_power_limit(cap)
            caps.append(gpu.power_limit_w)
        self.history.append((self._sim.now, caps))

    def final_caps(self) -> list[float]:
        return [gpu.power_limit_w for gpu in self.node.gpus]
