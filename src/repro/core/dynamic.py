"""EXTENSION: dynamic power-cap governor (paper future work; cf. DEPO
[Krzywaniak et al.] in the paper's related work).

The governor tunes a GPU's cap online while a repetitive kernel runs: it
walks the cap in fixed steps in one direction as long as measured energy
efficiency keeps improving, reverses direction once when it stops improving,
and locks in when no direction helps (hill climbing with hysteresis).  On
the simulated devices it converges to the same ``P_best`` the offline sweep
of Sec. II finds, without needing the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import nvml
from repro.hardware.gpu import GPUDevice
from repro.kernels.gemm import GemmKernel
from repro.sim import Simulator


@dataclass(frozen=True)
class GovernorStep:
    """One measurement epoch of the governor."""

    cap_w: float
    efficiency: float
    action: str  # "down", "up", "hold"


@dataclass
class DynamicCapGovernor:
    """Online hill-climbing cap tuner for one GPU.

    Parameters
    ----------
    step_w:
        Cap adjustment per epoch (W).
    improvement_threshold:
        Relative efficiency gain required to keep moving (hysteresis).
    max_epochs:
        Safety bound on tuning epochs.
    """

    gpu: GPUDevice
    sim: Simulator
    step_w: float = 10.0
    improvement_threshold: float = 0.002
    max_epochs: int = 200
    history: list[GovernorStep] = field(default_factory=list)

    def _measure_epoch(self, kernel: GemmKernel) -> float:
        """Run one kernel instance; return measured Gflop/s/W via NVML."""
        handle = nvml.nvmlDeviceGetHandleByIndex(self.gpu.index)
        e0 = nvml.nvmlDeviceGetTotalEnergyConsumption(handle)
        t0 = self.sim.now
        self.gpu.begin_kernel(kernel.precision, kernel.activity(self.gpu.spec), "gov")
        self.sim.schedule(kernel.time_on_gpu(self.gpu), self.gpu.end_kernel)
        self.sim.run()
        elapsed = self.sim.now - t0
        joules = (nvml.nvmlDeviceGetTotalEnergyConsumption(handle) - e0) / 1000.0
        return (kernel.flops / elapsed / 1e9) / (joules / elapsed)

    def tune(self, kernel: GemmKernel) -> float:
        """Converge to the best cap for ``kernel``; returns the final cap.

        The walk *continues through flat regions* (caps above the kernel's
        actual draw change nothing) and only reverses/stops when efficiency
        drops by more than the threshold below the best seen — otherwise a
        cap far above the operating point would look like a dead end.
        """
        spec = self.gpu.spec
        cap = self.gpu.power_limit_w
        direction = -1.0  # start by lowering power (the common win)
        reversals = 0
        best_eff = self._measure_epoch(kernel)
        best_cap = cap
        self.history.append(GovernorStep(cap, best_eff, "hold"))
        for _ in range(self.max_epochs):
            candidate = min(spec.cap_max_w, max(spec.cap_min_w, cap + direction * self.step_w))
            if candidate == cap:  # hit a hardware bound
                if reversals >= 1:
                    break
                direction, reversals = -direction, reversals + 1
                continue
            self.gpu.set_power_limit(candidate)
            eff = self._measure_epoch(kernel)
            if eff >= best_eff * (1.0 - self.improvement_threshold):
                # Improved or flat: keep walking.
                cap = candidate
                if eff > best_eff:
                    best_eff, best_cap = eff, cap
                self.history.append(
                    GovernorStep(cap, eff, "down" if direction < 0 else "up")
                )
            else:
                # Significant degradation: back to the best point, then try
                # the other direction once before locking in.
                cap = best_cap
                self.gpu.set_power_limit(cap)
                self.history.append(GovernorStep(candidate, eff, "hold"))
                if reversals >= 1:
                    break
                direction, reversals = -direction, reversals + 1
        self.gpu.set_power_limit(best_cap)
        return best_cap
