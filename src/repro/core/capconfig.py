"""Cap-state strings: the paper's H/B/L configuration language.

A configuration like ``HHBB`` assigns each GPU one of three states:

- ``H`` — highest power (the hardware maximum / TDP, i.e. no capping);
- ``B`` — the best-efficiency cap found by the kernel study (``P_best``);
- ``L`` — the lowest enforceable cap (``P_min``).

The paper evaluated all permutations (``HHHB``, ``HHBH``, ...) and found the
variation negligible, so the presentation keeps one representative per
multiset; :func:`standard_configs` returns exactly the configurations shown
in Figs. 3/4, and :func:`enumerate_configs` provides the full set for the
permutation-invariance check.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

VALID_STATES = "HBL"


@dataclass(frozen=True)
class CapStates:
    """Watt values of the three states for one (platform, op, precision)."""

    h_w: float
    b_w: float
    l_w: float

    def watts(self, letter: str) -> float:
        try:
            return {"H": self.h_w, "B": self.b_w, "L": self.l_w}[letter]
        except KeyError:
            raise ValueError(f"unknown cap state {letter!r}") from None


@dataclass(frozen=True)
class CapConfig:
    """One per-GPU cap assignment, e.g. ``HHBB``."""

    letters: str

    def __post_init__(self) -> None:
        if not self.letters:
            raise ValueError("empty cap configuration")
        bad = set(self.letters) - set(VALID_STATES)
        if bad:
            raise ValueError(f"invalid cap states {sorted(bad)}; allowed: H, B, L")

    @property
    def n_gpus(self) -> int:
        return len(self.letters)

    def watts(self, states: CapStates) -> list[float]:
        """Per-GPU caps in watts."""
        return [states.watts(c) for c in self.letters]

    def is_default(self) -> bool:
        return set(self.letters) == {"H"}

    def canonical(self) -> "CapConfig":
        """Representative with H first, then B, then L (paper's convention)."""
        order = {c: i for i, c in enumerate(VALID_STATES)}
        return CapConfig("".join(sorted(self.letters, key=order.__getitem__)))

    def __str__(self) -> str:  # pragma: no cover
        return self.letters


def standard_configs(n_gpus: int) -> list[CapConfig]:
    """The configurations shown in the paper's Figs. 3/4.

    Ordered: all-low through all-high (L-ladder), then the B-ladder down to
    all-best.  The default ``H...H`` sits between the two ladders.
    """
    if n_gpus < 1:
        raise ValueError("need at least one GPU")
    ladder_l = ["H" * k + "L" * (n_gpus - k) for k in range(n_gpus)]
    ladder_b = ["H" * k + "B" * (n_gpus - k) for k in range(n_gpus, -1, -1)]
    return [CapConfig(c) for c in ladder_l + ladder_b]


def enumerate_configs(n_gpus: int, states: str = VALID_STATES) -> list[CapConfig]:
    """Every assignment (all permutations) — the paper's full search space."""
    return [CapConfig("".join(p)) for p in itertools.product(states, repeat=n_gpus)]


def permutation_group(config: CapConfig) -> list[CapConfig]:
    """All distinct orderings of one multiset, e.g. HHBB -> 6 configs."""
    seen = sorted({"".join(p) for p in itertools.permutations(config.letters)})
    return [CapConfig(s) for s in seen]
