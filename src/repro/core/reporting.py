"""Text tables and CSV emitters for experiment output.

Every benchmark prints its reproduction table through these helpers so the
rows the paper reports can be eyeballed directly in the bench output.
"""

from __future__ import annotations

import io
from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Fixed-width text table."""
    srows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    sep = "-+-".join("-" * w for w in widths)
    out.write(" | ".join(h.ljust(w) for h, w in zip(headers, widths)) + "\n")
    out.write(sep + "\n")
    for row in srows:
        out.write(" | ".join(c.ljust(w) for c, w in zip(row, widths)) + "\n")
    return out.getvalue()


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.2f}"
    return str(cell)


def format_pct(value: float, signed: bool = True) -> str:
    """Paper-style percentage ('+24.30 %' / '-26.41 %')."""
    sign = "+" if signed and value >= 0 else ""
    return f"{sign}{value:.2f} %"


def to_csv(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    out = io.StringIO()
    out.write(",".join(headers) + "\n")
    for row in rows:
        out.write(",".join(str(c) for c in row) + "\n")
    return out.getvalue()
