"""Kernel-level power-cap sweep (paper Sec. II, Fig. 1).

Runs a single cuBLAS-style GEMM on one simulated GPU at every cap from the
hardware minimum to TDP, measuring each point through the NVML facade — the
same protocol the paper uses on real silicon.  The sweep varies the cap in
2 % steps of TDP by default, matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import nvml
from repro.hardware.catalog import gpu_spec
from repro.hardware.gpu import GPUDevice
from repro.hardware.specs import GPUSpec
from repro.kernels.gemm import GemmKernel
from repro.sim import Simulator


@dataclass(frozen=True)
class SweepPoint:
    """One cap setting of the sweep."""

    cap_w: float
    cap_pct_tdp: float
    time_s: float
    gflops: float
    power_w: float
    energy_j: float

    @property
    def efficiency(self) -> float:
        """Gflop/s/W."""
        return self.gflops / self.power_w


def _measure_point(gpu: GPUDevice, sim: Simulator, kernel: GemmKernel) -> SweepPoint:
    """Execute the kernel once on the device and read energy via NVML."""
    handle = nvml.nvmlDeviceGetHandleByIndex(gpu.index)
    e0_mj = nvml.nvmlDeviceGetTotalEnergyConsumption(handle)
    t0 = sim.now
    gpu.begin_kernel(kernel.precision, kernel.activity(gpu.spec), "sweep-gemm")
    duration = kernel.time_on_gpu(gpu)
    sim.schedule(duration, gpu.end_kernel)
    sim.run()
    elapsed = sim.now - t0
    energy_j = (nvml.nvmlDeviceGetTotalEnergyConsumption(handle) - e0_mj) / 1000.0
    return SweepPoint(
        cap_w=gpu.power_limit_w,
        cap_pct_tdp=100.0 * gpu.power_limit_w / gpu.spec.tdp_w,
        time_s=elapsed,
        gflops=kernel.flops / elapsed / 1e9,
        power_w=energy_j / elapsed,
        energy_j=energy_j,
    )


def sweep_gemm(
    model: str | GPUSpec,
    n: int,
    precision: str,
    step_pct: float = 2.0,
    m: Optional[int] = None,
    k: Optional[int] = None,
    cache: Optional["ExperimentCache"] = None,
) -> list[SweepPoint]:
    """Sweep the power cap for an ``n x n x n`` GEMM on one GPU model.

    Caps run from the hardware minimum to the maximum in ``step_pct`` of TDP
    (requests below the minimum constraint are clamped, as NVML enforces).
    The sweep is a pure function of its arguments, so with ``cache`` set the
    whole point list is memoised (catalog models only — ad-hoc
    :class:`GPUSpec` objects are uncacheable and always run).
    """
    if cache is not None:
        key = cache.key_for("sweep_gemm", (model, n, precision, step_pct, m, k))
        if key is not None:
            hit, value = cache.load(key)
            if hit:
                return value
            value = sweep_gemm(model, n, precision, step_pct=step_pct, m=m, k=k)
            cache.save(key, value, label=f"sweep/{model}/{precision}/n{n}")
            return value
    spec = gpu_spec(model) if isinstance(model, str) else model
    sim = Simulator()
    gpu = GPUDevice(spec, 0, sim)
    kernel = GemmKernel(m or n, n, k or n, precision)

    class _OneGPUNode:
        gpus = [gpu]

    nvml.nvmlInit(_OneGPUNode())
    points: list[SweepPoint] = []
    try:
        pct = 100.0 * spec.cap_min_w / spec.tdp_w
        caps: list[float] = []
        while pct < 100.0 * spec.cap_max_w / spec.tdp_w - 1e-9:
            caps.append(max(spec.cap_min_w, spec.tdp_w * pct / 100.0))
            pct += step_pct
        caps.append(spec.cap_max_w)
        for cap in caps:
            gpu.set_power_limit(cap)
            points.append(_measure_point(gpu, sim, kernel))
    finally:
        nvml.nvmlShutdown()
    return points


def sweep_many(
    cases: list[tuple],
    jobs: int = 1,
    step_pct: float = 2.0,
    cache: Optional["ExperimentCache"] = None,
) -> list[list[SweepPoint]]:
    """Run several independent cap sweeps, optionally over a process pool.

    ``cases`` is a list of ``(model, n, precision)`` tuples; the result is
    one point list per case, in input order.  Each sweep owns its Simulator
    and device, so the parallel results are bit-identical to serial ones
    (lazy import to avoid the ``core -> experiments`` cycle); with ``cache``
    set, hits are resolved before any pool work is submitted.
    """
    from repro.experiments.parallel import parallel_starmap

    return parallel_starmap(
        sweep_gemm,
        [(model, n, precision, step_pct) for model, n, precision in cases],
        jobs=jobs,
        cache=cache,
    )


def best_point(points: list[SweepPoint]) -> SweepPoint:
    """The sweep point with maximal energy efficiency."""
    if not points:
        raise ValueError("empty sweep")
    return max(points, key=lambda p: p.efficiency)
