"""Task-based operations under cap configurations (paper Figs. 3 and 4).

:func:`run_operation` is the experiment workhorse: build one of the paper's
platforms, apply a cap configuration (and optionally CPU caps), execute the
tiled operation through the StarPU-like runtime with the ``dmdas`` scheduler,
and measure application-level energy through the NVML/PAPI facades exactly
as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.core.capconfig import CapConfig, CapStates
from repro.core.efficiency import ConfigMetrics
from repro.energy.meters import EnergyMeter
from repro.hardware.catalog import build_platform
from repro.linalg import assign_priorities, gemm_graph, potrf_graph
from repro.obs import spans as _spans
from repro.runtime import RuntimeSystem
from repro.sim import Simulator, Tracer

OPERATIONS = ("gemm", "potrf")


@dataclass(frozen=True)
class OperationSpec:
    """One task-based operation instance (a row of the paper's Table II)."""

    op: str
    n: int
    nb: int
    precision: str

    def __post_init__(self) -> None:
        if self.op not in OPERATIONS:
            raise ValueError(f"unknown operation {self.op!r}; have {OPERATIONS}")
        if self.n % self.nb != 0:
            raise ValueError("N must be a multiple of the tile size Nt")

    @property
    def nt(self) -> int:
        return self.n // self.nb

    def build_graph(self):
        if self.op == "gemm":
            graph, *_ = gemm_graph(self.n, self.nb, self.precision)
        else:
            graph, _ = potrf_graph(self.n, self.nb, self.precision)
        assign_priorities(graph)
        return graph

    def __str__(self) -> str:  # pragma: no cover
        return f"{self.op}-{self.precision} N={self.n} Nt={self.nb}"


def run_operation(
    platform: str,
    spec: OperationSpec,
    config: CapConfig,
    states: CapStates,
    scheduler: str = "dmdas",
    seed: int = 0,
    cpu_caps: Optional[Mapping[int, float]] = None,
    tracer: Optional[Tracer] = None,
    cache: Optional["ExperimentCache"] = None,
) -> ConfigMetrics:
    """Execute one operation under one cap configuration; return metrics.

    The run is a pure function of its arguments (own Simulator, own seeded
    RNG pool), so with ``cache`` set the result is memoised under the full
    run identity; traced runs (``tracer`` not ``None``) are never cached
    because their side-channel artefacts cannot be replayed from a value.
    """
    if cache is not None:
        key = cache.key_for(
            "run_operation",
            (platform, spec, config, states, scheduler, seed, cpu_caps, tracer),
        )
        if key is not None:
            hit, value = cache.load(key)
            if hit:
                return value
            value = run_operation(
                platform, spec, config, states, scheduler, seed, cpu_caps, tracer
            )
            cache.save(key, value, label=f"{platform}/{spec.op}/{config.letters}")
            return value
    with _spans.span(
        "run_operation",
        platform=platform,
        op=spec.op,
        n=spec.n,
        config=config.letters,
        scheduler=scheduler,
        seed=seed,
    ):
        sim = Simulator()
        node = build_platform(platform, sim, tracer)
        if config.n_gpus != node.n_gpus:
            raise ValueError(
                f"config {config.letters} has {config.n_gpus} states for "
                f"{node.n_gpus} GPUs on {platform}"
            )
        node.set_gpu_caps(config.watts(states))
        if cpu_caps:
            for pkg, watts in cpu_caps.items():
                node.cpus[pkg].set_power_limit(watts)
        runtime = RuntimeSystem(node, scheduler=scheduler, seed=seed, tracer=tracer)
        graph = spec.build_graph()
        meter = EnergyMeter(node)
        meter.start()
        result = runtime.run(graph, reset_energy=False)
        measurement = meter.stop()
        return ConfigMetrics(
            config=config.letters,
            makespan_s=measurement.duration_s,
            total_flops=result.total_flops,
            energy_j=measurement.total_j,
            device_energy_j={**measurement.cpu_j, **measurement.gpu_j},
            gpu_task_fraction=result.gpu_task_fraction(),
        )


def run_config_set(
    platform: str,
    spec: OperationSpec,
    configs: Sequence[CapConfig],
    states: CapStates,
    scheduler: str = "dmdas",
    seed: int = 0,
    cpu_caps: Optional[Mapping[int, float]] = None,
    jobs: int = 1,
    cache: Optional["ExperimentCache"] = None,
) -> dict[str, ConfigMetrics]:
    """Run a set of configurations; keys are the config letter strings.

    Each configuration is an independent simulation, so ``jobs > 1`` fans
    them out over a process pool with bit-identical results (lazy import to
    avoid the ``core -> experiments`` cycle); ``cache`` resolves hits
    before any pool work is submitted.
    """
    from repro.experiments.parallel import parallel_starmap

    metrics = parallel_starmap(
        run_operation,
        [(platform, spec, config, states, scheduler, seed, cpu_caps) for config in configs],
        jobs=jobs,
        cache=cache,
    )
    return {config.letters: m for config, m in zip(configs, metrics)}


def best_config(
    platform: str,
    spec: OperationSpec,
    configs: Sequence[CapConfig],
    states: CapStates,
    objective: str = "efficiency",
    scheduler: str = "dmdas",
    seed: int = 0,
    cpu_caps: Optional[Mapping[int, float]] = None,
    jobs: int = 1,
    cache: Optional["ExperimentCache"] = None,
    prune: bool = True,
) -> "PlanResult":
    """Arg-best over a configuration grid without simulating the whole grid.

    Thin entry point to the bound-and-prune planner
    (:func:`repro.core.planner.plan_configs`, lazy import — the planner
    imports this module): identical winner and metrics to running
    :func:`run_config_set` over the full grid and taking the best
    ``objective`` score, but only configurations that could still win are
    simulated.
    """
    from repro.core.planner import plan_configs

    return plan_configs(
        platform, spec, configs, states,
        objective=objective, scheduler=scheduler, seed=seed,
        cpu_caps=cpu_caps, jobs=jobs, cache=cache, prune=prune,
    )


@dataclass(frozen=True)
class RepeatedMetrics:
    """Mean and spread over several seeded repetitions of one configuration.

    The paper averages repeated runs per configuration; this is the same
    methodology (each repetition re-seeds execution and calibration noise).
    """

    config: str
    runs: tuple[ConfigMetrics, ...]

    @property
    def mean_gflops(self) -> float:
        return sum(r.gflops for r in self.runs) / len(self.runs)

    @property
    def mean_energy_j(self) -> float:
        return sum(r.energy_j for r in self.runs) / len(self.runs)

    @property
    def mean_efficiency(self) -> float:
        return sum(r.efficiency for r in self.runs) / len(self.runs)

    @property
    def efficiency_spread(self) -> float:
        """(max - min) / mean of efficiency across repetitions."""
        effs = [r.efficiency for r in self.runs]
        return (max(effs) - min(effs)) / self.mean_efficiency


def run_repeated(
    platform: str,
    spec: OperationSpec,
    config: CapConfig,
    states: CapStates,
    repeats: int = 3,
    scheduler: str = "dmdas",
    base_seed: int = 0,
    cpu_caps: Optional[Mapping[int, float]] = None,
    jobs: int = 1,
    cache: Optional["ExperimentCache"] = None,
) -> RepeatedMetrics:
    """Run one configuration ``repeats`` times with distinct seeds.

    Repetitions differ only by seed and are independent simulations, so
    ``jobs > 1`` runs them across a process pool, bit-identically; each
    seeded repetition is a distinct ``cache`` entry.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    from repro.experiments.parallel import parallel_starmap

    runs = tuple(
        parallel_starmap(
            run_operation,
            [
                (platform, spec, config, states, scheduler, base_seed + i, cpu_caps)
                for i in range(repeats)
            ],
            jobs=jobs,
            cache=cache,
        )
    )
    return RepeatedMetrics(config=config.letters, runs=runs)
